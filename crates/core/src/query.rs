//! Point-influence queries over candidate locations.
//!
//! The paper positions RNNHM as a generalization of location-selection
//! problems that score a *given* candidate set (Huang et al. \[11\], Xia
//! et al. \[27\]: "top-t most influential sites"): once the NN-circles are
//! built, the influence of any candidate location is a point-enclosure
//! query plus one measure evaluation. This module provides that adapted
//! solution.

use rnnhm_geom::{Circle, Point, Rect};
use rnnhm_index::{EnclosureIndex, RTree};

use crate::arrangement::{DiskArrangement, SquareArrangement};
use crate::measure::InfluenceMeasure;

/// The RNN set of one candidate location (sweep-space coordinates for
/// square arrangements). Closed containment: a candidate exactly on an
/// NN-circle boundary ties with the client's current facility and wins
/// it, per the paper's `≤` in the RNN definition (§III-A).
pub fn rnn_of_candidate_square(arr: &SquareArrangement, tree: &RTree, q: Point) -> Vec<u32> {
    let mut hits = Vec::new();
    tree.stab_point(q, &mut hits);
    hits.iter().map(|&c| arr.owners[c as usize]).collect()
}

/// Scores every candidate against a square arrangement: `(RNN set,
/// influence)` per candidate. Candidates are given in *input-space*
/// coordinates and mapped through the arrangement's frame.
pub fn influence_at_points_square<M: InfluenceMeasure>(
    arr: &SquareArrangement,
    measure: &M,
    candidates: &[Point],
) -> Vec<(Vec<u32>, f64)> {
    let tree = RTree::build(&arr.squares);
    candidates
        .iter()
        .map(|&q| {
            let rnn = rnn_of_candidate_square(arr, &tree, arr.space.to_sweep(q));
            let influence = measure.influence(&rnn);
            (rnn, influence)
        })
        .collect()
}

/// Scores every candidate against a disk arrangement (L2).
pub fn influence_at_points_disk<M: InfluenceMeasure>(
    arr: &DiskArrangement,
    measure: &M,
    candidates: &[Point],
) -> Vec<(Vec<u32>, f64)> {
    let bboxes: Vec<Rect> = arr.disks.iter().map(Circle::bbox).collect();
    let tree = RTree::build(&bboxes);
    let mut hits = Vec::new();
    candidates
        .iter()
        .map(|&q| {
            hits.clear();
            tree.stab(q, &mut hits);
            let rnn: Vec<u32> = hits
                .iter()
                .filter(|&&c| arr.disks[c as usize].contains_closed(q))
                .map(|&c| arr.owners[c as usize])
                .collect();
            let influence = measure.influence(&rnn);
            (rnn, influence)
        })
        .collect()
}

/// The `t` most influential candidates (indices into `candidates`),
/// ties broken by input order — the adapted top-t most influential
/// sites query of \[11\]/\[27\].
pub fn top_t_candidates_square<M: InfluenceMeasure>(
    arr: &SquareArrangement,
    measure: &M,
    candidates: &[Point],
    t: usize,
) -> Vec<(usize, f64)> {
    let scored = influence_at_points_square(arr, measure, candidates);
    let mut idx: Vec<(usize, f64)> =
        scored.iter().enumerate().map(|(i, (_, inf))| (i, *inf)).collect();
    idx.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite influence").then(a.0.cmp(&b.0)));
    idx.truncate(t);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::{build_square_arrangement, CoordSpace, Mode};
    use crate::measure::CountMeasure;
    use crate::oracle::{rnn_at_points, signature};
    use rnnhm_geom::Metric;

    fn arr_from_squares(squares: Vec<Rect>) -> SquareArrangement {
        let owners = (0..squares.len() as u32).collect();
        let n = squares.len();
        SquareArrangement {
            squares,
            owners,
            space: CoordSpace::Identity,
            n_clients: n,
            dropped: 0,
            k: 1,
        }
    }

    #[test]
    fn candidate_scores_match_containment() {
        let arr =
            arr_from_squares(vec![Rect::new(0.0, 2.0, 0.0, 2.0), Rect::new(1.0, 3.0, 1.0, 3.0)]);
        let candidates = vec![
            Point::new(0.5, 0.5),
            Point::new(1.5, 1.5),
            Point::new(2.5, 2.5),
            Point::new(5.0, 5.0),
        ];
        let scored = influence_at_points_square(&arr, &CountMeasure, &candidates);
        let counts: Vec<f64> = scored.iter().map(|(_, f)| *f).collect();
        assert_eq!(counts, vec![1.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn candidate_scores_match_direct_definition_under_l1() {
        // End to end: candidates scored via the rotated arrangement must
        // agree with the direct bichromatic RNN definition.
        let clients = vec![Point::new(1.0, 1.0), Point::new(4.0, 2.0), Point::new(2.0, 5.0)];
        let facilities = vec![Point::new(3.0, 3.0)];
        let arr =
            build_square_arrangement(&clients, &facilities, Metric::L1, Mode::Bichromatic).unwrap();
        let candidates = vec![Point::new(1.2, 1.4), Point::new(3.9, 2.2), Point::new(10.0, 10.0)];
        let scored = influence_at_points_square(&arr, &CountMeasure, &candidates);
        for (q, (rnn, _)) in candidates.iter().zip(&scored) {
            let direct = rnn_at_points(&clients, &facilities, Metric::L1, *q);
            assert_eq!(signature(rnn), direct, "candidate {q:?}");
        }
    }

    #[test]
    fn top_t_orders_candidates() {
        let arr = arr_from_squares(vec![
            Rect::new(0.0, 2.0, 0.0, 2.0),
            Rect::new(1.0, 3.0, 1.0, 3.0),
            Rect::new(1.5, 2.5, 1.5, 2.5),
        ]);
        let candidates = vec![
            Point::new(5.0, 5.0), // 0 circles
            Point::new(1.8, 1.8), // 3 circles
            Point::new(0.5, 0.5), // 1 circle
        ];
        let top = top_t_candidates_square(&arr, &CountMeasure, &candidates, 2);
        assert_eq!(top[0], (1, 3.0));
        assert_eq!(top[1], (2, 1.0));
    }

    #[test]
    fn disk_candidates_match_containment() {
        let disks =
            vec![Circle::new(Point::new(0.0, 0.0), 2.0), Circle::new(Point::new(1.0, 0.0), 2.0)];
        let arr = DiskArrangement { disks, owners: vec![0, 1], n_clients: 2, dropped: 0, k: 1 };
        let scored = influence_at_points_disk(
            &arr,
            &CountMeasure,
            &[Point::new(0.5, 0.0), Point::new(-1.5, 0.0), Point::new(9.0, 9.0)],
        );
        let counts: Vec<f64> = scored.iter().map(|(_, f)| *f).collect();
        assert_eq!(counts, vec![2.0, 1.0, 0.0]);
    }
}
