//! NN-circle construction and arrangements (paper §III).
//!
//! For every client `o ∈ O`, the NN-circle `C(o)` is centered at `o` with
//! radius equal to the distance from `o` to its nearest facility. Under L∞
//! NN-circles are squares, under L1 diamonds (squares after the π/4
//! rotation of §VII-B), under L2 Euclidean disks.
//!
//! The construction generalizes to RkNN influence for any `k ≥ 1`: a
//! client is influenced by a new facility iff that facility would be
//! among its `k` nearest, which holds exactly when the facility lies
//! inside the client's *k-NN circle* — same center, radius = distance
//! to the `k`-th nearest facility. Everything downstream of circle
//! construction (sweeps, rasterization, tiles, edits) is
//! circle-generic, so the `k`-generic builders
//! ([`build_square_arrangement_k`] / [`build_disk_arrangement_k`])
//! produce arrangements the whole stack consumes unchanged.

use rnnhm_geom::transform::{l1_radius_to_linf, rotate45, unrotate45};
use rnnhm_geom::{Circle, Metric, Point, Rect};
use rnnhm_index::KdTree;

use crate::BuildError;

/// Bichromatic (`O` and `F` distinct) or monochromatic (`O = F`) RNNs
/// (paper §III-A, §VII-A).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Clients and facilities are different point sets.
    Bichromatic,
    /// One point set; each point's NN excludes itself.
    Monochromatic,
}

/// The coordinate system an arrangement lives in.
///
/// L1 instances are solved in a rotated frame where L1 balls are axis-
/// aligned squares; [`CoordSpace::to_sweep`] / [`CoordSpace::to_original`]
/// convert between frames.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CoordSpace {
    /// Sweep coordinates coincide with input coordinates (L∞, L2).
    Identity,
    /// Sweep coordinates are the input rotated by π/4 (L1).
    Rotated45,
}

impl CoordSpace {
    /// Maps an input-space point into sweep space.
    #[inline]
    pub fn to_sweep(&self, p: Point) -> Point {
        match self {
            CoordSpace::Identity => p,
            CoordSpace::Rotated45 => rotate45(p),
        }
    }

    /// Maps a sweep-space point back to input space.
    #[inline]
    pub fn to_original(&self, p: Point) -> Point {
        match self {
            CoordSpace::Identity => p,
            CoordSpace::Rotated45 => unrotate45(p),
        }
    }
}

/// An arrangement of square NN-circles (L∞ directly, L1 after rotation).
#[derive(Debug, Clone)]
pub struct SquareArrangement {
    /// NN-circles as axis-aligned squares, in sweep space.
    pub squares: Vec<Rect>,
    /// `owners[i]` is the client id whose NN-circle `squares[i]` is.
    pub owners: Vec<u32>,
    /// Coordinate frame of `squares`.
    pub space: CoordSpace,
    /// Total number of clients in the instance (the id universe).
    pub n_clients: usize,
    /// Clients dropped because their NN distance is zero (they coincide
    /// with a facility; their NN-circle has empty interior).
    pub dropped: usize,
    /// The `k` of the RkNN instance: every circle's radius is its
    /// owner's distance to its `k`-th nearest facility (1 = plain RNN).
    pub k: usize,
}

/// FNV-1a over a stream of `u64` words — the workspace-wide stable
/// hash used for cache keys (no `std::hash` involvement, so the value
/// is identical across runs, platforms and std versions). Used by the
/// arrangement fingerprints, the measure cache keys, and the tile
/// scheme fingerprint in `rnnhm_heatmap::tiles`.
pub fn fnv1a_words(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for w in words {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

impl SquareArrangement {
    /// A stable fingerprint of the arrangement's full geometry —
    /// squares (bitwise), owners, coordinate space and client universe.
    ///
    /// Two arrangements share a fingerprint iff they would label every
    /// point of the plane identically, so the fingerprint is a sound
    /// cache key for derived artifacts (rendered heat-map tiles, in
    /// `rnnhm_heatmap::tiles`). The hash is FNV-1a over the coordinate
    /// bits: deterministic across runs and platforms.
    pub fn fingerprint(&self) -> u64 {
        let header = [
            0x5153, // "SQ" discriminant: square vs disk arrangements
            self.space as u64,
            self.n_clients as u64,
            self.squares.len() as u64,
            self.k as u64,
        ];
        fnv1a_words(
            header
                .into_iter()
                .chain(self.squares.iter().flat_map(|s| {
                    [s.x_lo.to_bits(), s.x_hi.to_bits(), s.y_lo.to_bits(), s.y_hi.to_bits()]
                }))
                .chain(self.owners.iter().map(|&o| o as u64)),
        )
    }

    /// Bounding box of all squares (sweep space); `None` when empty.
    pub fn bbox(&self) -> Option<Rect> {
        let mut it = self.squares.iter();
        let first = *it.next()?;
        Some(it.fold(first, |acc, r| acc.union(r)))
    }

    /// The sub-arrangement of NN-circles that can influence any point
    /// of `extent` (given in *input-space* coordinates; for rotated L1
    /// arrangements the filter runs against the sweep-space bounding
    /// box of the rotated extent). Owner ids, coordinate space and the
    /// client universe are preserved, so any influence query or raster
    /// restricted to `extent` is *exact* on the sub-arrangement: both
    /// rasterization paths only count a shape at a point its closed
    /// bounding square contains, and such a point inside `extent`
    /// implies the square intersects `extent`.
    ///
    /// This is what makes tile rendering `O(n)` *filter* + output-local
    /// work instead of `O(n)` *setup* per tile
    /// (`rnnhm_heatmap::tiles`).
    pub fn restrict_to(&self, extent: Rect) -> SquareArrangement {
        let window = match self.space {
            CoordSpace::Identity => extent,
            CoordSpace::Rotated45 => {
                let corners = [
                    rotate45(Point::new(extent.x_lo, extent.y_lo)),
                    rotate45(Point::new(extent.x_lo, extent.y_hi)),
                    rotate45(Point::new(extent.x_hi, extent.y_lo)),
                    rotate45(Point::new(extent.x_hi, extent.y_hi)),
                ];
                Rect::bounding(&corners).expect("four corners")
            }
        };
        let mut squares = Vec::new();
        let mut owners = Vec::new();
        for (s, &o) in self.squares.iter().zip(&self.owners) {
            if s.intersects(&window) {
                squares.push(*s);
                owners.push(o);
            }
        }
        SquareArrangement {
            squares,
            owners,
            space: self.space,
            n_clients: self.n_clients,
            dropped: self.dropped,
            k: self.k,
        }
    }

    /// Number of NN-circles.
    pub fn len(&self) -> usize {
        self.squares.len()
    }

    /// Whether the arrangement has no NN-circles.
    pub fn is_empty(&self) -> bool {
        self.squares.is_empty()
    }
}

/// An arrangement of disk NN-circles (L2, §VII-C).
#[derive(Debug, Clone)]
pub struct DiskArrangement {
    /// NN-circles as Euclidean disks (input space; L2 needs no rotation).
    pub disks: Vec<Circle>,
    /// `owners[i]` is the client id whose NN-circle `disks[i]` is.
    pub owners: Vec<u32>,
    /// Total number of clients in the instance (the id universe).
    pub n_clients: usize,
    /// Clients dropped for zero NN distance.
    pub dropped: usize,
    /// The `k` of the RkNN instance: every disk's radius is its owner's
    /// distance to its `k`-th nearest facility (1 = plain RNN).
    pub k: usize,
}

impl DiskArrangement {
    /// A stable fingerprint of the arrangement's full geometry; see
    /// [`SquareArrangement::fingerprint`] for the contract.
    pub fn fingerprint(&self) -> u64 {
        let header = [
            0x4b53, // "DK" discriminant
            self.n_clients as u64,
            self.disks.len() as u64,
            self.k as u64,
        ];
        fnv1a_words(
            header
                .into_iter()
                .chain(
                    self.disks
                        .iter()
                        .flat_map(|d| [d.c.x.to_bits(), d.c.y.to_bits(), d.r.to_bits()]),
                )
                .chain(self.owners.iter().map(|&o| o as u64)),
        )
    }

    /// Bounding box of all disks; `None` when empty.
    pub fn bbox(&self) -> Option<Rect> {
        let mut it = self.disks.iter();
        let first = it.next()?.bbox();
        Some(it.fold(first, |acc, c| acc.union(&c.bbox())))
    }

    /// The sub-arrangement of NN-circles that can influence any point
    /// of `extent`; see [`SquareArrangement::restrict_to`] for the
    /// exactness contract (both rasterization paths gate coverage on
    /// the disk's closed bounding box containing the query point).
    pub fn restrict_to(&self, extent: Rect) -> DiskArrangement {
        let mut disks = Vec::new();
        let mut owners = Vec::new();
        for (d, &o) in self.disks.iter().zip(&self.owners) {
            if d.bbox().intersects(&extent) {
                disks.push(*d);
                owners.push(o);
            }
        }
        DiskArrangement {
            disks,
            owners,
            n_clients: self.n_clients,
            dropped: self.dropped,
            k: self.k,
        }
    }

    /// Number of NN-circles.
    pub fn len(&self) -> usize {
        self.disks.len()
    }

    /// Whether the arrangement has no NN-circles.
    pub fn is_empty(&self) -> bool {
        self.disks.is_empty()
    }
}

/// Computes each client's nearest neighbor as `(id, distance)`.
///
/// In bichromatic mode `id` indexes `facilities`; in monochromatic mode
/// `facilities` is ignored, each client's NN is its nearest *other*
/// client, and `id` indexes `clients`. The distances are exactly what
/// the arrangement builders use as NN-circle radii; the ids let
/// [`crate::edit::DynamicArrangement`] maintain the assignment
/// incrementally under facility edits.
pub fn nn_assignments(
    clients: &[Point],
    facilities: &[Point],
    metric: Metric,
    mode: Mode,
) -> Result<Vec<(u32, f64)>, BuildError> {
    validate_instance(clients, facilities, mode, 1)?;
    match mode {
        Mode::Bichromatic => {
            let tree = KdTree::build(facilities);
            Ok(clients
                .iter()
                .map(|o| tree.nearest(o, metric).expect("non-empty facility tree"))
                .collect())
        }
        Mode::Monochromatic => {
            let tree = KdTree::build(clients);
            Ok(clients
                .iter()
                .enumerate()
                .map(|(i, o)| {
                    tree.nearest_excluding(o, metric, i as u32).expect("at least two points")
                })
                .collect())
        }
    }
}

/// Checks an instance for emptiness, non-finite coordinates (a release
/// build would otherwise let a NaN silently poison kd-tree ordering and
/// scanline span math — `Point::new` only debug-asserts) and a
/// satisfiable `k`.
fn validate_instance(
    clients: &[Point],
    facilities: &[Point],
    mode: Mode,
    k: usize,
) -> Result<(), BuildError> {
    if clients.is_empty() {
        return Err(BuildError::NoClients);
    }
    if k == 0 {
        return Err(BuildError::ZeroK);
    }
    if let Some(i) = clients.iter().position(|p| !p.x.is_finite() || !p.y.is_finite()) {
        return Err(BuildError::NonFiniteClient(i));
    }
    match mode {
        Mode::Bichromatic => {
            if facilities.is_empty() {
                return Err(BuildError::NoFacilities);
            }
            if let Some(i) = facilities.iter().position(|p| !p.x.is_finite() || !p.y.is_finite()) {
                return Err(BuildError::NonFiniteFacility(i));
            }
            if k > facilities.len() {
                return Err(BuildError::KTooLarge { k, available: facilities.len() });
            }
        }
        Mode::Monochromatic => {
            if clients.len() < 2 {
                return Err(BuildError::TooFewPoints);
            }
            if k > clients.len() - 1 {
                return Err(BuildError::KTooLarge { k, available: clients.len() - 1 });
            }
        }
    }
    Ok(())
}

/// Computes each client's `k` nearest neighbors as `(id, distance)`
/// pairs sorted by increasing distance — the RkNN generalization of
/// [`nn_assignments`] (which it reproduces bitwise at `k = 1`).
///
/// The last pair's distance is the client's `k`-th NN distance: the
/// k-NN circle radius. In bichromatic mode ids index `facilities`; in
/// monochromatic mode each client's neighbors are its nearest *other*
/// clients and ids index `clients`. Errors on empty sets, non-finite
/// coordinates, `k = 0`, and `k` larger than the available neighbor
/// candidates.
pub fn knn_assignments(
    clients: &[Point],
    facilities: &[Point],
    metric: Metric,
    mode: Mode,
    k: usize,
) -> Result<Vec<Vec<(u32, f64)>>, BuildError> {
    if k == 1 {
        // The 1-NN fast path avoids a per-client Vec growth loop and is
        // bitwise identical (the k-NN query breaks ties like `nearest`).
        return Ok(nn_assignments(clients, facilities, metric, mode)?
            .into_iter()
            .map(|pair| vec![pair])
            .collect());
    }
    validate_instance(clients, facilities, mode, k)?;
    match mode {
        Mode::Bichromatic => {
            let tree = KdTree::build(facilities);
            Ok(clients.iter().map(|o| tree.k_nearest(o, metric, k)).collect())
        }
        Mode::Monochromatic => {
            let tree = KdTree::build(clients);
            Ok(clients
                .iter()
                .enumerate()
                .map(|(i, o)| tree.k_nearest_excluding(o, metric, k, i as u32))
                .collect())
        }
    }
}

/// [`knn_assignments`] computed over contiguous client bands in
/// parallel — **bitwise identical** output (every per-client query is
/// independent and reads one shared kd-tree; only the scheduling
/// changes, never the arithmetic). Falls through to the sequential
/// scan on single-core machines. This is the sharded-build front end:
/// the k-NN resolution dominates build time at millions of clients.
pub fn knn_assignments_parallel(
    clients: &[Point],
    facilities: &[Point],
    metric: Metric,
    mode: Mode,
    k: usize,
) -> Result<Vec<Vec<(u32, f64)>>, BuildError> {
    let threads = crate::parallel::effective_parallelism();
    if threads <= 1 || clients.len() < 2 * threads {
        return knn_assignments(clients, facilities, metric, mode, k);
    }
    validate_instance(clients, facilities, mode, k)?;
    let tree = match mode {
        Mode::Bichromatic => KdTree::build(facilities),
        Mode::Monochromatic => KdTree::build(clients),
    };
    let ranges = crate::parallel::chunk_ranges(clients.len(), threads);
    let mut out: Vec<Vec<(u32, f64)>> = Vec::with_capacity(clients.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let tree = &tree;
                scope.spawn(move || {
                    let mut band = Vec::with_capacity(range.len());
                    for i in range {
                        let o = &clients[i];
                        // Mirror the sequential paths exactly,
                        // including the k = 1 `nearest` fast path.
                        band.push(match (mode, k) {
                            (Mode::Bichromatic, 1) => {
                                vec![tree.nearest(o, metric).expect("non-empty facility tree")]
                            }
                            (Mode::Bichromatic, _) => tree.k_nearest(o, metric, k),
                            (Mode::Monochromatic, 1) => vec![tree
                                .nearest_excluding(o, metric, i as u32)
                                .expect("at least two points")],
                            (Mode::Monochromatic, _) => {
                                tree.k_nearest_excluding(o, metric, k, i as u32)
                            }
                        });
                    }
                    band
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("k-NN band worker panicked"));
        }
    });
    Ok(out)
}

/// Computes each client's `k`-th NN distance to the facility set.
fn knn_radii(
    clients: &[Point],
    facilities: &[Point],
    metric: Metric,
    mode: Mode,
    k: usize,
) -> Result<Vec<f64>, BuildError> {
    if k == 1 {
        return Ok(nn_assignments(clients, facilities, metric, mode)?
            .into_iter()
            .map(|(_, d)| d)
            .collect());
    }
    Ok(knn_assignments(clients, facilities, metric, mode, k)?
        .into_iter()
        .map(|nn| nn.last().expect("validated k >= 1").1)
        .collect())
}

/// Builds the square arrangement for L∞ or L1 instances.
///
/// L1 instances are rotated by π/4 into a frame where their diamond
/// NN-circles become axis-aligned squares (§VII-B); the returned
/// [`CoordSpace`] records the frame.
///
/// Zero-radius NN-circles (client coincides with a facility) are dropped:
/// their interior is empty, so they bound no region and change no RNN set
/// of any region interior.
pub fn build_square_arrangement(
    clients: &[Point],
    facilities: &[Point],
    metric: Metric,
    mode: Mode,
) -> Result<SquareArrangement, BuildError> {
    build_square_arrangement_k(clients, facilities, metric, mode, 1)
}

/// Builds the square arrangement of *k-NN circles* for L∞ or L1
/// instances: each client's radius is its distance to its `k`-th
/// nearest facility, so a point is inside the circle iff placing a
/// facility there would make it one of the client's `k` nearest
/// (RkNN influence). `k = 1` reproduces [`build_square_arrangement`]
/// bitwise.
pub fn build_square_arrangement_k(
    clients: &[Point],
    facilities: &[Point],
    metric: Metric,
    mode: Mode,
    k: usize,
) -> Result<SquareArrangement, BuildError> {
    assert!(metric != Metric::L2, "L2 instances use build_disk_arrangement / crest_l2_sweep");
    let radii = knn_radii(clients, facilities, metric, mode, k)?;
    let space = match metric {
        Metric::L1 => CoordSpace::Rotated45,
        _ => CoordSpace::Identity,
    };
    let mut squares = Vec::with_capacity(clients.len());
    let mut owners = Vec::with_capacity(clients.len());
    let mut dropped = 0usize;
    for (i, (&o, &r)) in clients.iter().zip(&radii).enumerate() {
        if r <= 0.0 {
            dropped += 1;
            continue;
        }
        let (center, half) = match metric {
            Metric::Linf => (o, r),
            Metric::L1 => (rotate45(o), l1_radius_to_linf(r)),
            Metric::L2 => unreachable!(),
        };
        squares.push(Rect::centered(center, half));
        owners.push(i as u32);
    }
    Ok(SquareArrangement { squares, owners, space, n_clients: clients.len(), dropped, k })
}

/// Builds the disk arrangement for L2 instances (§VII-C).
pub fn build_disk_arrangement(
    clients: &[Point],
    facilities: &[Point],
    mode: Mode,
) -> Result<DiskArrangement, BuildError> {
    build_disk_arrangement_k(clients, facilities, mode, 1)
}

/// Builds the disk arrangement of *k-NN circles* for L2 instances; see
/// [`build_square_arrangement_k`] for the RkNN radius contract.
pub fn build_disk_arrangement_k(
    clients: &[Point],
    facilities: &[Point],
    mode: Mode,
    k: usize,
) -> Result<DiskArrangement, BuildError> {
    let radii = knn_radii(clients, facilities, Metric::L2, mode, k)?;
    let mut disks = Vec::with_capacity(clients.len());
    let mut owners = Vec::with_capacity(clients.len());
    let mut dropped = 0usize;
    for (i, (&o, &r)) in clients.iter().zip(&radii).enumerate() {
        if r <= 0.0 {
            dropped += 1;
            continue;
        }
        disks.push(Circle::new(o, r));
        owners.push(i as u32);
    }
    Ok(DiskArrangement { disks, owners, n_clients: clients.len(), dropped, k })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_example_linf() {
        // Paper Fig. 4: two clients, one facility; both NN-circles are
        // squares centered at the clients with radius = L∞ distance to f1.
        let clients = vec![Point::new(0.0, 0.0), Point::new(3.0, 1.0)];
        let facilities = vec![Point::new(1.0, 1.0)];
        let arr = build_square_arrangement(&clients, &facilities, Metric::Linf, Mode::Bichromatic)
            .unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr.squares[0], Rect::centered(clients[0], 1.0));
        assert_eq!(arr.squares[1], Rect::centered(clients[1], 2.0));
        assert_eq!(arr.owners, vec![0, 1]);
        assert_eq!(arr.space, CoordSpace::Identity);
    }

    #[test]
    fn l1_arrangement_is_rotated() {
        let clients = vec![Point::new(0.0, 0.0)];
        let facilities = vec![Point::new(2.0, 0.0)]; // L1 distance 2
        let arr =
            build_square_arrangement(&clients, &facilities, Metric::L1, Mode::Bichromatic).unwrap();
        assert_eq!(arr.space, CoordSpace::Rotated45);
        // Radius 2 diamond → square with half side 2/√2 = √2.
        let half = arr.squares[0].width() / 2.0;
        assert!((half - 2f64 / 2f64.sqrt()).abs() < 1e-12);
        // The rotated facility must sit on the square's boundary.
        let f_rot = CoordSpace::Rotated45.to_sweep(facilities[0]);
        let s = arr.squares[0];
        let on_boundary = (f_rot.x - s.x_lo).abs() < 1e-9
            || (f_rot.x - s.x_hi).abs() < 1e-9
            || (f_rot.y - s.y_lo).abs() < 1e-9
            || (f_rot.y - s.y_hi).abs() < 1e-9;
        assert!(on_boundary, "facility should be on the NN-circle boundary");
    }

    #[test]
    fn disk_arrangement_radii() {
        let clients = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let facilities = vec![Point::new(3.0, 4.0)];
        let arr = build_disk_arrangement(&clients, &facilities, Mode::Bichromatic).unwrap();
        assert!((arr.disks[0].r - 5.0).abs() < 1e-12);
        assert!((arr.disks[1].r - (49.0f64 + 16.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn zero_radius_clients_dropped() {
        let clients = vec![Point::new(1.0, 1.0), Point::new(5.0, 5.0)];
        let facilities = vec![Point::new(1.0, 1.0)]; // first client coincides
        let arr = build_square_arrangement(&clients, &facilities, Metric::Linf, Mode::Bichromatic)
            .unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr.dropped, 1);
        assert_eq!(arr.owners, vec![1]);
        assert_eq!(arr.n_clients, 2);
    }

    #[test]
    fn monochromatic_uses_nearest_other_point() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(5.0, 0.0)];
        let arr = build_square_arrangement(&pts, &[], Metric::Linf, Mode::Monochromatic).unwrap();
        assert_eq!(arr.len(), 3);
        // Radii: 1 (to p1), 1 (to p0), 4 (to p1).
        let halves: Vec<f64> = arr.squares.iter().map(|s| s.width() / 2.0).collect();
        assert_eq!(halves, vec![1.0, 1.0, 4.0]);
    }

    #[test]
    fn error_cases() {
        let pts = vec![Point::new(0.0, 0.0)];
        assert_eq!(
            build_square_arrangement(&pts, &[], Metric::Linf, Mode::Bichromatic).unwrap_err(),
            BuildError::NoFacilities
        );
        assert_eq!(
            build_square_arrangement(&[], &pts, Metric::Linf, Mode::Bichromatic).unwrap_err(),
            BuildError::NoClients
        );
        assert_eq!(
            build_square_arrangement(&pts, &[], Metric::Linf, Mode::Monochromatic).unwrap_err(),
            BuildError::TooFewPoints
        );
        assert_eq!(
            build_disk_arrangement(&[], &pts, Mode::Bichromatic).unwrap_err(),
            BuildError::NoClients
        );
    }

    #[test]
    fn restrict_keeps_exactly_the_overlapping_shapes() {
        let clients = vec![Point::new(1.0, 1.0), Point::new(8.0, 8.0), Point::new(4.0, 4.0)];
        let facilities = vec![Point::new(0.0, 1.0)];
        let arr = build_square_arrangement(&clients, &facilities, Metric::Linf, Mode::Bichromatic)
            .unwrap();
        let sub = arr.restrict_to(Rect::new(0.0, 2.5, 0.0, 2.5));
        // Client 0 (radius 1 around (1,1)) overlaps; client 1 (radius 8
        // around (8,8) reaches down to 0) overlaps too; client 2 at
        // (4,4) radius 5 reaches to -1 and overlaps as well — shrink
        // the window until only client 0 remains.
        assert!(!sub.is_empty() && sub.owners.contains(&0));
        assert_eq!(sub.n_clients, arr.n_clients, "client universe preserved");
        assert_eq!(sub.space, arr.space);
        let tiny = arr.restrict_to(Rect::new(1.9, 2.0, 0.0, 0.1));
        for (s, &o) in tiny.squares.iter().zip(&tiny.owners) {
            assert!(s.intersects(&Rect::new(1.9, 2.0, 0.0, 0.1)), "owner {o} kept wrongly");
        }
        // Disk variant.
        let disks = build_disk_arrangement(&clients, &facilities, Mode::Bichromatic).unwrap();
        let dsub = disks.restrict_to(Rect::new(0.0, 2.0, 0.0, 2.0));
        assert!(dsub.owners.contains(&0));
        assert_eq!(dsub.n_clients, disks.n_clients);
        // L1 (rotated frame): the input-space window is mapped through
        // the rotation before filtering; the result must keep every
        // shape whose sweep square meets the rotated window.
        let l1 =
            build_square_arrangement(&clients, &facilities, Metric::L1, Mode::Bichromatic).unwrap();
        let l1_sub = l1.restrict_to(Rect::new(0.0, 2.0, 0.0, 2.0));
        assert!(l1_sub.owners.contains(&0));
        assert_eq!(l1_sub.space, CoordSpace::Rotated45);
    }

    #[test]
    fn fingerprints_are_stable_and_discriminating() {
        let clients = vec![Point::new(0.0, 0.0), Point::new(3.0, 1.0)];
        let facilities = vec![Point::new(1.0, 1.0)];
        let a = build_square_arrangement(&clients, &facilities, Metric::Linf, Mode::Bichromatic)
            .unwrap();
        let b = build_square_arrangement(&clients, &facilities, Metric::Linf, Mode::Bichromatic)
            .unwrap();
        // Same instance → same key, across independent builds.
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Any geometric change flips the key.
        let moved = vec![Point::new(0.0, 0.0), Point::new(3.0, 1.0 + 1e-12)];
        let c =
            build_square_arrangement(&moved, &facilities, Metric::Linf, Mode::Bichromatic).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Square and disk arrangements never collide on the same points.
        let d = build_disk_arrangement(&clients, &facilities, Mode::Bichromatic).unwrap();
        assert_ne!(a.fingerprint(), d.fingerprint());
        assert_eq!(d.fingerprint(), d.clone().fingerprint());
    }

    #[test]
    fn k_builders_match_brute_force_radii() {
        let mut state = 0xabcdu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64) * 8.0
        };
        let clients: Vec<Point> = (0..40).map(|_| Point::new(next(), next())).collect();
        let facilities: Vec<Point> = (0..9).map(|_| Point::new(next(), next())).collect();
        for k in [1usize, 2, 4, 9] {
            for metric in [Metric::Linf, Metric::L1] {
                let arr =
                    build_square_arrangement_k(&clients, &facilities, metric, Mode::Bichromatic, k)
                        .unwrap();
                assert_eq!(arr.k, k);
                for (s, &o) in arr.squares.iter().zip(&arr.owners) {
                    let mut ds: Vec<f64> =
                        facilities.iter().map(|f| metric.dist(&clients[o as usize], f)).collect();
                    ds.sort_by(f64::total_cmp);
                    let half = match metric {
                        Metric::L1 => ds[k - 1] / 2f64.sqrt(),
                        _ => ds[k - 1],
                    };
                    assert!(
                        ((s.x_hi - s.x_lo) / 2.0 - half).abs() < 1e-12,
                        "{metric:?} k={k} owner {o}"
                    );
                }
            }
            let arr =
                build_disk_arrangement_k(&clients, &facilities, Mode::Bichromatic, k).unwrap();
            assert_eq!(arr.k, k);
            for (d, &o) in arr.disks.iter().zip(&arr.owners) {
                let mut ds: Vec<f64> =
                    facilities.iter().map(|f| clients[o as usize].dist2(f)).collect();
                ds.sort_by(f64::total_cmp);
                assert_eq!(d.r.to_bits(), ds[k - 1].to_bits(), "L2 k={k} owner {o}");
            }
        }
        // k = 1 through the k-generic path is bitwise the classic build.
        let a = build_square_arrangement(&clients, &facilities, Metric::Linf, Mode::Bichromatic)
            .unwrap();
        let b =
            build_square_arrangement_k(&clients, &facilities, Metric::Linf, Mode::Bichromatic, 1)
                .unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn k_is_validated() {
        let clients = vec![Point::new(0.0, 0.0), Point::new(1.0, 2.0), Point::new(3.0, 1.0)];
        let facs = vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0)];
        assert_eq!(
            build_square_arrangement_k(&clients, &facs, Metric::Linf, Mode::Bichromatic, 0)
                .unwrap_err(),
            BuildError::ZeroK
        );
        assert_eq!(
            build_square_arrangement_k(&clients, &facs, Metric::Linf, Mode::Bichromatic, 3)
                .unwrap_err(),
            BuildError::KTooLarge { k: 3, available: 2 }
        );
        assert_eq!(
            build_disk_arrangement_k(&clients, &[], Mode::Monochromatic, 3).unwrap_err(),
            BuildError::KTooLarge { k: 3, available: 2 }
        );
        // k = available is fine in both modes.
        assert!(
            build_square_arrangement_k(&clients, &facs, Metric::L1, Mode::Bichromatic, 2).is_ok()
        );
        assert!(build_disk_arrangement_k(&clients, &[], Mode::Monochromatic, 2).is_ok());
    }

    #[test]
    fn non_finite_points_are_rejected() {
        let nan = f64::NAN;
        let inf = f64::INFINITY;
        // Bypass Point::new's debug assert the way a release-mode caller
        // effectively does.
        let bad_client = Point { x: nan, y: 0.0 };
        let bad_fac = Point { x: 1.0, y: inf };
        let good = Point::new(1.0, 1.0);
        assert_eq!(
            build_square_arrangement(&[good, bad_client], &[good], Metric::Linf, Mode::Bichromatic)
                .unwrap_err(),
            BuildError::NonFiniteClient(1)
        );
        assert_eq!(
            build_disk_arrangement(&[good], &[bad_fac], Mode::Bichromatic).unwrap_err(),
            BuildError::NonFiniteFacility(0)
        );
        assert_eq!(
            nn_assignments(&[bad_client, good], &[], Metric::L2, Mode::Monochromatic).unwrap_err(),
            BuildError::NonFiniteClient(0)
        );
        assert_eq!(
            knn_assignments(&[good, good], &[good, bad_fac], Metric::L1, Mode::Bichromatic, 2)
                .unwrap_err(),
            BuildError::NonFiniteFacility(1)
        );
    }

    #[test]
    fn fingerprint_discriminates_k_on_identical_geometry() {
        // Two coincident facilities: the 1-NN and 2-NN circles are
        // geometrically identical, but the fingerprints must differ so
        // tile caches never serve a k=1 render for a k=2 map.
        let clients = vec![Point::new(0.0, 0.0), Point::new(3.0, 1.0)];
        let facs = vec![Point::new(1.0, 1.0), Point::new(1.0, 1.0)];
        let a = build_square_arrangement_k(&clients, &facs, Metric::Linf, Mode::Bichromatic, 1)
            .unwrap();
        let b = build_square_arrangement_k(&clients, &facs, Metric::Linf, Mode::Bichromatic, 2)
            .unwrap();
        assert_eq!(a.squares, b.squares, "coincident facilities: same geometry");
        assert_ne!(a.fingerprint(), b.fingerprint(), "k must be part of the cache key");
        let da = build_disk_arrangement_k(&clients, &facs, Mode::Bichromatic, 1).unwrap();
        let db = build_disk_arrangement_k(&clients, &facs, Mode::Bichromatic, 2).unwrap();
        assert_ne!(da.fingerprint(), db.fingerprint());
        // restrict_to preserves k.
        assert_eq!(b.restrict_to(Rect::new(-1.0, 1.0, -1.0, 1.0)).k, 2);
        assert_eq!(db.restrict_to(Rect::new(-1.0, 1.0, -1.0, 1.0)).k, 2);
    }

    #[test]
    fn bbox_covers_all_squares() {
        let clients = vec![Point::new(0.0, 0.0), Point::new(10.0, 10.0)];
        let facilities = vec![Point::new(1.0, 0.0)];
        let arr = build_square_arrangement(&clients, &facilities, Metric::Linf, Mode::Bichromatic)
            .unwrap();
        let bb = arr.bbox().unwrap();
        for s in &arr.squares {
            assert!(bb.contains_rect(s));
        }
    }
}
