//! CREST: Constructing RNN hEat maps with the Sweep line sTrategy (§V).
//!
//! The sweep moves left to right over the distinct x-coordinates of the
//! NN-circles' vertical sides (the *events*). Between two events, the
//! sorted horizontal sides of the circles cut by the line form the *line
//! status*; consecutive elements form *pairs* whose open rectangles are
//! *subregions* of arrangement regions.
//!
//! Two optimizations make CREST optimal:
//!
//! 1. **No point-enclosure queries** (§V-B, Lemma 1 / Corollary 1): the
//!    RNN set of a pair is derived by walking the line status and adding /
//!    removing the circle owner at each lower / upper side.
//! 2. **Changed intervals + cached base sets** (§V-C, Lemma 2): crossing
//!    an event only changes the RNN sets of pairs entirely inside the
//!    y-extents of circles inserted into or removed from the line. Only
//!    those pairs are relabeled, starting from the cached RNN set of the
//!    pair immediately below the interval.
//!
//! [`crest_a_sweep`] implements only optimization 1 (the paper's CREST-A
//! ablation): every valid pair of every line status is relabeled.
//!
//! The invariant maintained for the record table `P` (verified by the
//! test suite): *for every side `s` in the line status, `P[s]` equals the
//! RNN set of the region between `s` and its successor at the current
//! sweep position* — for sides that are the last of a run of equal
//! y-values, which are the only ones ever consulted.

use rnnhm_geom::eps::OrderedF64;
use rnnhm_geom::Rect;
use rnnhm_index::interval::{merge_intervals, Interval};
use rnnhm_index::BPlusTree;

use crate::arrangement::SquareArrangement;
use crate::measure::InfluenceMeasure;
use crate::rnnset::RnnSet;
use crate::sink::RegionSink;
use crate::stats::SweepStats;

/// A horizontal side of an NN-circle, as a line-status key.
///
/// Ordered by `(y, circle id, upper)`: ties in `y` are broken arbitrarily
/// but consistently, as the paper allows ("ties are broken arbitrarily").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct SideKey {
    y: OrderedF64,
    id: u32,
    upper: bool,
}

impl SideKey {
    #[inline]
    fn lower(y: f64, id: u32) -> Self {
        SideKey { y: OrderedF64::new(y), id, upper: false }
    }
    #[inline]
    fn upper(y: f64, id: u32) -> Self {
        SideKey { y: OrderedF64::new(y), id, upper: true }
    }
    /// Index into the record table: `2·id` for lower, `2·id + 1` for upper.
    #[inline]
    fn record_slot(&self) -> usize {
        (self.id as usize) * 2 + self.upper as usize
    }
}

/// A vertical side of an NN-circle, as a sweep event.
#[derive(Clone, Copy, Debug)]
struct Event {
    x: f64,
    circle: u32,
    is_left: bool,
}

/// Builds the event queue `Q_x`: all vertical sides in ascending x order.
fn build_events(arr: &SquareArrangement) -> Vec<Event> {
    let mut events = Vec::with_capacity(arr.squares.len() * 2);
    for (i, s) in arr.squares.iter().enumerate() {
        events.push(Event { x: s.x_lo, circle: i as u32, is_left: true });
        events.push(Event { x: s.x_hi, circle: i as u32, is_left: false });
    }
    events.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .expect("finite coordinates")
            .then(a.circle.cmp(&b.circle))
            .then(a.is_left.cmp(&b.is_left))
    });
    events
}

/// Runs the full CREST algorithm (Algorithm 1) over a square arrangement.
///
/// Labels every region of the arrangement through `sink`, using `measure`
/// for the influence computation. Returns sweep statistics; `labels` is
/// the paper's `k`, which Lemma 3 bounds by `14·r`.
pub fn crest_sweep<M: InfluenceMeasure, S: RegionSink>(
    arr: &SquareArrangement,
    measure: &M,
    sink: &mut S,
) -> SweepStats {
    let events = build_events(arr);
    let n_sides = arr.squares.len() * 2;
    let mut t: BPlusTree<SideKey> = BPlusTree::new();
    let mut records: Vec<Option<Vec<u32>>> = vec![None; n_sides];
    let mut base = RnnSet::new(arr.n_clients);
    let mut stats = SweepStats::default();
    let mut intervals: Vec<Interval> = Vec::new();
    let mut keys_scratch: Vec<SideKey> = Vec::new();

    let mut i = 0;
    while i < events.len() {
        let x = events[i].x;
        intervals.clear();
        // Apply every side change at this x (Algorithm 1 lines 5–14).
        while i < events.len() && events[i].x == x {
            let ev = events[i];
            let s = arr.squares[ev.circle as usize];
            let kl = SideKey::lower(s.y_lo, ev.circle);
            let ku = SideKey::upper(s.y_hi, ev.circle);
            if ev.is_left {
                let ins_l = t.insert(kl);
                let ins_u = t.insert(ku);
                debug_assert!(ins_l && ins_u, "duplicate side keys");
            } else {
                let rem_l = t.remove(&kl);
                let rem_u = t.remove(&ku);
                debug_assert!(rem_l && rem_u, "removing absent side keys");
                records[kl.record_slot()] = None;
                records[ku.record_slot()] = None;
            }
            intervals.push(Interval::new(s.y_lo, s.y_hi));
            i += 1;
        }
        stats.events += 1;
        stats.peak_line = stats.peak_line.max(t.len());
        let x_next = if i < events.len() { events[i].x } else { x };

        // Merge and process the changed intervals (lines 15–30).
        merge_intervals(&mut intervals);
        for iv in &intervals {
            process_interval(
                arr,
                &t,
                iv,
                &mut records,
                &mut base,
                measure,
                sink,
                x,
                x_next,
                &mut stats,
                &mut keys_scratch,
            );
        }
    }
    debug_assert!(t.is_empty(), "line status must drain after the last event");
    stats
}

/// Processes one merged changed interval: relabels the pairs entirely
/// inside it, starting from the cached base set of the pair just below.
#[allow(clippy::too_many_arguments)]
fn process_interval<M: InfluenceMeasure, S: RegionSink>(
    arr: &SquareArrangement,
    t: &BPlusTree<SideKey>,
    iv: &Interval,
    records: &mut [Option<Vec<u32>>],
    base: &mut RnnSet,
    measure: &M,
    sink: &mut S,
    x: f64,
    x_next: f64,
    stats: &mut SweepStats,
    keys: &mut Vec<SideKey>,
) {
    // Starting element: the first side with y ≥ iv.lo. The probe key is
    // minimal among keys with y == iv.lo, so a run of equal values is
    // entered at its first element (paper §VI-A: "checking backward until
    // the elements are less than y_i").
    let probe = SideKey { y: OrderedF64::new(iv.lo), id: 0, upper: false };
    let Some(st) = t.lower_bound(&probe) else { return };
    if t.key(st).y.0 > iv.hi {
        return; // no line elements inside the interval (pure removal)
    }

    // Collect the elements in [iv.lo, iv.hi]; the collection is what the
    // paper calls finding the starting and ending elements plus the scan
    // between them.
    keys.clear();
    let mut cur = Some(st);
    while let Some(c) = cur {
        let k = t.key(c);
        if k.y.0 > iv.hi {
            break;
        }
        keys.push(k);
        cur = t.next(c);
    }

    // Base set: the cached RNN set of the element immediately preceding
    // the interval (§V-C2), or ∅ at the bottom of the line status.
    match t.prev(st) {
        Some(p) => {
            let pk = t.key(p);
            let rec = records[pk.record_slot()]
                .as_ref()
                .expect("invariant: predecessor of a changed interval has a record");
            base.load(rec);
        }
        None => base.clear(),
    }

    // Walk the interval, maintaining the running set (Corollary 1).
    for j in 0..keys.len() {
        let k = keys[j];
        let owner = arr.owners[k.id as usize];
        if k.upper {
            let removed = base.remove(owner);
            debug_assert!(removed, "leaving a circle we never entered");
        } else {
            let added = base.add(owner);
            debug_assert!(added, "entering a circle twice");
        }
        records[k.record_slot()] = Some(base.snapshot());
        if j + 1 < keys.len() {
            let nk = keys[j + 1];
            if k.y < nk.y {
                // A valid pair entirely inside the interval: label it.
                let members = base.members();
                let influence = measure.influence(members);
                stats.labels += 1;
                stats.max_rnn = stats.max_rnn.max(members.len());
                sink.label(Rect::new(x, x_next, k.y.0, nk.y.0), members, influence);
            }
        }
    }
}

/// CREST-A (§VIII-B): the sweep with only the first optimization.
///
/// RNN sets are still derived from the line status without enclosure
/// queries, but *every* valid pair of *every* line status is labeled —
/// no changed intervals, no cached base sets. Used as the ablation
/// baseline in Figs 16–17 and as the exact strip enumerator: its emitted
/// rectangles tile the arrangement's bounding strip between consecutive
/// events, so aggregating them reconstructs exact region geometry.
pub fn crest_a_sweep<M: InfluenceMeasure, S: RegionSink>(
    arr: &SquareArrangement,
    measure: &M,
    sink: &mut S,
) -> SweepStats {
    let events = build_events(arr);
    let mut t: BPlusTree<SideKey> = BPlusTree::new();
    let mut base = RnnSet::new(arr.n_clients);
    let mut stats = SweepStats::default();

    let mut i = 0;
    while i < events.len() {
        let x = events[i].x;
        while i < events.len() && events[i].x == x {
            let ev = events[i];
            let s = arr.squares[ev.circle as usize];
            let kl = SideKey::lower(s.y_lo, ev.circle);
            let ku = SideKey::upper(s.y_hi, ev.circle);
            if ev.is_left {
                t.insert(kl);
                t.insert(ku);
            } else {
                t.remove(&kl);
                t.remove(&ku);
            }
            i += 1;
        }
        stats.events += 1;
        stats.peak_line = stats.peak_line.max(t.len());
        if i >= events.len() {
            break; // line status is empty after the final event
        }
        let x_next = events[i].x;

        // Single traversal of the whole line status (Corollary 1).
        base.clear();
        let mut cur = t.first();
        while let Some(c) = cur {
            let k = t.key(c);
            let owner = arr.owners[k.id as usize];
            if k.upper {
                base.remove(owner);
            } else {
                base.add(owner);
            }
            let next = t.next(c);
            if let Some(nc) = next {
                let nk = t.key(nc);
                if k.y < nk.y {
                    let members = base.members();
                    let influence = measure.influence(members);
                    stats.labels += 1;
                    stats.max_rnn = stats.max_rnn.max(members.len());
                    sink.label(Rect::new(x, x_next, k.y.0, nk.y.0), members, influence);
                }
            }
            cur = next;
        }
        debug_assert!(base.is_empty(), "every entered circle must be left");
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::{CoordSpace, SquareArrangement};
    use crate::measure::CountMeasure;
    use crate::sink::CollectSink;

    /// Builds an arrangement directly from squares (bypassing NN search),
    /// owner ids equal to indices.
    fn arr_from_squares(squares: Vec<Rect>) -> SquareArrangement {
        let owners = (0..squares.len() as u32).collect();
        let n = squares.len();
        SquareArrangement {
            squares,
            owners,
            space: CoordSpace::Identity,
            n_clients: n,
            dropped: 0,
            k: 1,
        }
    }

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v
    }

    #[test]
    fn single_square() {
        let arr = arr_from_squares(vec![Rect::new(0.0, 2.0, 0.0, 2.0)]);
        let mut sink = CollectSink::default();
        let stats = crest_sweep(&arr, &CountMeasure, &mut sink);
        // One region: the square interior, labeled once at its insertion.
        assert_eq!(stats.labels, 1);
        assert_eq!(sink.regions.len(), 1);
        assert_eq!(sink.regions[0].rnn, vec![0]);
        assert_eq!(sink.regions[0].influence, 1.0);
        assert_eq!(sink.regions[0].rect, Rect::new(0.0, 2.0, 0.0, 2.0));
    }

    #[test]
    fn two_disjoint_squares() {
        let arr =
            arr_from_squares(vec![Rect::new(0.0, 1.0, 0.0, 1.0), Rect::new(5.0, 6.0, 5.0, 6.0)]);
        let mut sink = CollectSink::default();
        let stats = crest_sweep(&arr, &CountMeasure, &mut sink);
        assert_eq!(stats.labels, 2);
        let sets: Vec<Vec<u32>> = sink.regions.iter().map(|r| sorted(r.rnn.clone())).collect();
        assert!(sets.contains(&vec![0]));
        assert!(sets.contains(&vec![1]));
    }

    #[test]
    fn two_overlapping_squares_label_all_faces() {
        // Squares [0,2]² and [1,3]²: faces are A∖B, A∩B, B∖A (plus outside).
        let arr =
            arr_from_squares(vec![Rect::new(0.0, 2.0, 0.0, 2.0), Rect::new(1.0, 3.0, 1.0, 3.0)]);
        let mut sink = CollectSink::default();
        let stats = crest_sweep(&arr, &CountMeasure, &mut sink);
        let mut sets: Vec<Vec<u32>> = sink.regions.iter().map(|r| sorted(r.rnn.clone())).collect();
        sets.sort();
        sets.dedup();
        assert!(sets.contains(&vec![0]));
        assert!(sets.contains(&vec![1]));
        assert!(sets.contains(&vec![0, 1]));
        // The overlap region {0,1} exists; counting distinct sets there are
        // exactly 3 non-empty ones for this pair.
        assert_eq!(sets.len(), 3);
        assert!(stats.labels >= 3);
        // Every region's influence equals its set size under CountMeasure.
        for r in &sink.regions {
            assert_eq!(r.influence, r.rnn.len() as f64);
        }
    }

    #[test]
    fn nested_squares() {
        // B strictly inside A: faces A∖B and A∩B={A,B}.
        let arr =
            arr_from_squares(vec![Rect::new(0.0, 10.0, 0.0, 10.0), Rect::new(4.0, 6.0, 4.0, 6.0)]);
        let mut sink = CollectSink::default();
        crest_sweep(&arr, &CountMeasure, &mut sink);
        let mut sets: Vec<Vec<u32>> = sink.regions.iter().map(|r| sorted(r.rnn.clone())).collect();
        sets.sort();
        sets.dedup();
        assert_eq!(sets, vec![vec![0], vec![0, 1]]);
        // The inner region must be labeled exactly once, with both owners.
        let inner: Vec<_> =
            sink.regions.iter().filter(|r| sorted(r.rnn.clone()) == vec![0, 1]).collect();
        assert_eq!(inner.len(), 1);
        assert_eq!(inner[0].rect, Rect::new(4.0, 6.0, 4.0, 6.0));
    }

    #[test]
    fn fig10_example_step_by_step() {
        // Paper Fig. 10: three squares; we use a faithful reconstruction:
        // C(o1) wide and low, C(o2) overlapping it to the upper right,
        // C(o3) a tall thin square inserted between them.
        let c1 = Rect::new(0.0, 6.0, 0.0, 4.0);
        let c2 = Rect::new(3.0, 9.0, 2.0, 6.0);
        let c3 = Rect::new(2.0, 2.5, -1.0, 5.0);
        let arr = arr_from_squares(vec![c1, c2, c3]);
        let mut sink = CollectSink::default();
        let stats = crest_sweep(&arr, &CountMeasure, &mut sink);
        let mut sets: Vec<Vec<u32>> = sink.regions.iter().map(|r| sorted(r.rnn.clone())).collect();
        sets.sort();
        sets.dedup();
        // Expected distinct non-empty RNN sets: {0}, {1}, {0,1}, {2}, {0,2}.
        assert!(sets.contains(&vec![0]));
        assert!(sets.contains(&vec![1]));
        assert!(sets.contains(&vec![0, 1]));
        assert!(sets.contains(&vec![0, 2]));
        assert!(stats.labels as usize >= sets.len());
    }

    #[test]
    fn crest_and_crest_a_agree_on_distinct_sets() {
        let squares = vec![
            Rect::new(0.0, 4.0, 0.0, 4.0),
            Rect::new(2.0, 6.0, 1.0, 5.0),
            Rect::new(3.0, 5.0, -2.0, 2.0),
            Rect::new(-1.0, 1.0, 3.0, 7.0),
        ];
        let arr = arr_from_squares(squares);
        let mut a = CollectSink::default();
        let mut b = CollectSink::default();
        let s_crest = crest_sweep(&arr, &CountMeasure, &mut a);
        let s_a = crest_a_sweep(&arr, &CountMeasure, &mut b);
        let mut sets_crest: Vec<Vec<u32>> =
            a.regions.iter().map(|r| sorted(r.rnn.clone())).collect();
        let mut sets_a: Vec<Vec<u32>> = b.regions.iter().map(|r| sorted(r.rnn.clone())).collect();
        sets_crest.sort();
        sets_crest.dedup();
        sets_a.sort();
        sets_a.dedup();
        assert_eq!(sets_crest, sets_a);
        // CREST must label no more than CREST-A (that is the point).
        assert!(s_crest.labels <= s_a.labels);
    }

    #[test]
    fn worst_case_diagonal_fig8() {
        // Paper Fig. 8: n squares of side n centered at (i, i). The number
        // of regions is r = n² − n + 2 (including the outer face); CREST's
        // labels k satisfy r ≤ k ≤ 14r (Lemma 3). A point's RNN set here
        // is a contiguous run of square indices, so the number of distinct
        // non-empty RNN sets is n(n+1)/2.
        let n = 8usize;
        let half = n as f64 / 2.0;
        let squares: Vec<Rect> = (0..n)
            .map(|i| Rect::centered(rnnhm_geom::Point::new(i as f64, i as f64), half))
            .collect();
        let arr = arr_from_squares(squares);
        let mut sink = CollectSink::default();
        let stats = crest_sweep(&arr, &CountMeasure, &mut sink);
        let mut sets: Vec<Vec<u32>> = sink.regions.iter().map(|r| sorted(r.rnn.clone())).collect();
        sets.sort();
        sets.dedup();
        assert_eq!(sets.len(), n * (n + 1) / 2, "distinct non-empty RNN sets");
        let r = (n * n - n + 2) as u64; // including outer face
        assert!(stats.labels >= sets.len() as u64);
        assert!(stats.labels <= 14 * r, "Lemma 3 upper bound");
    }

    #[test]
    fn labels_cover_every_strip_in_crest_a() {
        // CREST-A strips tile the x-extent of the arrangement.
        let arr =
            arr_from_squares(vec![Rect::new(0.0, 2.0, 0.0, 2.0), Rect::new(1.0, 3.0, 0.5, 2.5)]);
        let mut sink = CollectSink::default();
        crest_a_sweep(&arr, &CountMeasure, &mut sink);
        // Events at x = 0,1,2,3 → strips [0,1],[1,2],[2,3].
        let mut strip_starts: Vec<f64> = sink.regions.iter().map(|r| r.rect.x_lo).collect();
        strip_starts.sort_by(f64::total_cmp);
        strip_starts.dedup();
        assert_eq!(strip_starts, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn removal_and_insertion_share_an_event() {
        // Fig 11's situation at x4: one circle leaves and another enters
        // the line at the same x; their changed intervals merge and the
        // pairs in the merged span are processed once.
        let arr = arr_from_squares(vec![
            Rect::new(0.0, 4.0, 0.0, 4.0), // removed at x = 4
            Rect::new(4.0, 8.0, 2.0, 6.0), // inserted at x = 4
            Rect::new(2.0, 6.0, 1.0, 5.0), // spans the event
        ]);
        let mut sink = CollectSink::default();
        crest_sweep(&arr, &CountMeasure, &mut sink);
        let mut sets: Vec<Vec<u32>> = sink.regions.iter().map(|r| sorted(r.rnn.clone())).collect();
        sets.sort();
        sets.dedup();
        // All the faces that exist geometrically must be covered.
        for expect in [vec![0], vec![1], vec![2], vec![0, 2], vec![1, 2]] {
            assert!(sets.contains(&expect), "missing {expect:?} in {sets:?}");
        }
        // Labels at x = 4 describe the strip to its right: no label of a
        // region containing circle 0 may start at x ≥ 4.
        for r in &sink.regions {
            if r.rnn.contains(&0) {
                assert!(r.rect.x_lo < 4.0, "circle 0 labeled after removal: {r:?}");
            }
        }
    }

    #[test]
    fn identical_squares_stack() {
        // Coincident NN-circles: every boundary is a tie. The single
        // interior region carries all owners.
        let sq = Rect::new(1.0, 3.0, 1.0, 3.0);
        let arr = arr_from_squares(vec![sq; 5]);
        let mut sink = CollectSink::default();
        let stats = crest_sweep(&arr, &CountMeasure, &mut sink);
        let full: Vec<_> = sink.regions.iter().filter(|r| r.rect.height() > 0.0).collect();
        assert!(!full.is_empty());
        for r in full {
            assert_eq!(sorted(r.rnn.clone()), vec![0, 1, 2, 3, 4]);
            assert_eq!(r.influence, 5.0);
        }
        assert!(stats.max_rnn == 5);
    }

    #[test]
    fn sweep_is_deterministic() {
        let squares = vec![
            Rect::new(0.0, 4.0, 0.0, 4.0),
            Rect::new(2.0, 6.0, 1.0, 5.0),
            Rect::new(3.0, 5.0, -2.0, 2.0),
        ];
        let arr = arr_from_squares(squares);
        let mut a = CollectSink::default();
        let mut b = CollectSink::default();
        let sa = crest_sweep(&arr, &CountMeasure, &mut a);
        let sb = crest_sweep(&arr, &CountMeasure, &mut b);
        assert_eq!(sa, sb);
        assert_eq!(a.regions.len(), b.regions.len());
        for (x, y) in a.regions.iter().zip(&b.regions) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn multilabeling_is_bounded_by_region_degree() {
        // Fig 12: a region can be labeled several times within one line
        // status, but never more often than its degree (Lemma 3's local
        // argument). A comb of slabs all ending at the left side of a
        // tall square makes the square's interior border many pairs at
        // its insertion event.
        let mut squares = vec![Rect::new(5.0, 10.0, 0.0, 10.0)];
        for i in 0..4 {
            let y = 1.0 + 2.0 * i as f64;
            squares.push(Rect::new(0.0, 5.0, y, y + 1.0));
        }
        let arr = arr_from_squares(squares);
        let mut sink = CollectSink::default();
        let stats = crest_sweep(&arr, &CountMeasure, &mut sink);
        // The tall square's interior right of x=5 is one region; count how
        // often the sweep labeled it with exactly {0}.
        let tall_labels =
            sink.regions.iter().filter(|r| r.rnn == vec![0] && r.rect.x_lo >= 5.0).count();
        // Its degree: 4 sides of its own + the comb's 8 side-endpoints on
        // its left edge; the bound is loose but must hold.
        assert!(tall_labels >= 1);
        assert!(tall_labels <= 12, "labeled {tall_labels} times");
        assert!(stats.labels <= 14 * 14, "Lemma 3 sanity");
    }

    #[test]
    fn shared_boundary_squares() {
        // Two squares sharing a full edge: degenerate pair must not be
        // labeled, and sets on both sides must be correct.
        let arr = arr_from_squares(vec![
            Rect::new(0.0, 2.0, 0.0, 2.0),
            Rect::new(0.0, 2.0, 2.0, 4.0), // sits exactly on top
        ]);
        let mut sink = CollectSink::default();
        crest_sweep(&arr, &CountMeasure, &mut sink);
        let mut sets: Vec<Vec<u32>> = sink.regions.iter().map(|r| sorted(r.rnn.clone())).collect();
        sets.sort();
        sets.dedup();
        assert_eq!(sets, vec![vec![0], vec![1]]);
        for r in &sink.regions {
            assert!(r.rect.height() > 0.0, "degenerate pair labeled: {r:?}");
        }
    }
}
