//! CREST with the L2 distance metric (paper §VII-C).
//!
//! NN-circles are Euclidean disks; their boundary arcs form a curved
//! subdivision. The sweep uses as events:
//!
//! * the x-extreme points of every circle (insert / remove its two
//!   semicircle arcs),
//! * every circle–circle intersection point (the incident arcs swap
//!   positions in the line status).
//!
//! The line elements are the lower and upper semicircle arcs of each cut
//! circle. Between consecutive events no two arcs cross, so their
//! vertical order is fixed throughout a strip; we keep the line status as
//! a position-ordered sequence and evaluate arc y-coordinates on demand at
//! the strip midline. (The paper additionally uses circle centers as
//! events to keep its `(y^s, y^l)` keys monotone; with on-demand
//! evaluation the order never goes stale, so center events are
//! unnecessary — a documented simplification that removes `O(n)` key
//! updates per event without changing which regions are labeled.)
//!
//! ## Self-healing order maintenance
//!
//! Intersection x-coordinates are computed algebraically and can land a
//! few ulps away from where the evaluated arcs actually cross — worse,
//! near-tangent crossings close to a circle's x-extreme can be assigned
//! to the wrong semicircle. Rather than trusting event bookkeeping to
//! keep the status ordered, every event batch *re-sorts* the line status
//! by arc y at the new strip midline (an insertion-sort pass over the
//! almost-sorted sequence, `O(len + inversions)`), and every span the
//! sort moves becomes a *dirty range*. Crossing events therefore carry no
//! payload — they only delimit strips; the repair pass discovers the
//! actual swaps. This matches the paper's `O(n)` per-event update cost
//! (§VII-C: "update values y^s and y^l for each line element … completed
//! in linear time") while being robust to floating-point drift.
//!
//! Changed intervals and cached base sets then work exactly as in the L∞
//! sweep, but over *positions*: an insertion dirties the span between the
//! two new arcs; a repaired inversion dirties the span it moved; a
//! removal dirties nothing (the two arcs of a circle are adjacent at its
//! right extreme — unlike squares, whose right side is an extended
//! segment).

use rnnhm_geom::{Circle, Rect};
use rnnhm_index::RTree;

use crate::arrangement::DiskArrangement;
use crate::measure::InfluenceMeasure;
use crate::rnnset::RnnSet;
use crate::sink::RegionSink;
use crate::stats::SweepStats;

/// Arc slot: `2·disk + 1` for the upper semicircle, `2·disk` for lower.
type Slot = u32;

const ABSENT: usize = usize::MAX;

#[inline]
fn slot(disk: u32, upper: bool) -> Slot {
    disk * 2 + upper as u32
}

#[inline]
fn slot_disk(s: Slot) -> u32 {
    s / 2
}

#[inline]
fn slot_upper(s: Slot) -> bool {
    s % 2 == 1
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum EventKind {
    /// Right x-extreme: remove both arcs of `disk`.
    Remove { disk: u32 },
    /// A circle–circle intersection: strip delimiter (the repair pass
    /// performs the actual reordering).
    Cross,
    /// Left x-extreme: insert both arcs of `disk`.
    Insert { disk: u32 },
}

#[derive(Clone, Copy, Debug)]
struct Event {
    x: f64,
    kind: EventKind,
}

fn event_rank(kind: &EventKind) -> u8 {
    match kind {
        EventKind::Remove { .. } => 0,
        EventKind::Cross => 1,
        EventKind::Insert { .. } => 2,
    }
}

/// Builds the event queue: extremes plus all pairwise intersections
/// (found through an R-tree over the disks' bounding boxes).
fn build_events(arr: &DiskArrangement) -> Vec<Event> {
    let mut events = Vec::with_capacity(arr.disks.len() * 2);
    for (i, d) in arr.disks.iter().enumerate() {
        events.push(Event { x: d.x_min(), kind: EventKind::Insert { disk: i as u32 } });
        events.push(Event { x: d.x_max(), kind: EventKind::Remove { disk: i as u32 } });
    }
    let bboxes: Vec<Rect> = arr.disks.iter().map(Circle::bbox).collect();
    let rtree = RTree::build(&bboxes);
    let mut hits: Vec<u32> = Vec::new();
    for (i, d) in arr.disks.iter().enumerate() {
        hits.clear();
        rtree.intersecting(&bboxes[i], &mut hits);
        for &j in &hits {
            if (j as usize) <= i {
                continue; // each unordered pair once
            }
            for p in &d.intersect(&arr.disks[j as usize]) {
                events.push(Event { x: p.x, kind: EventKind::Cross });
            }
        }
    }
    events.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .expect("finite event coordinates")
            .then_with(|| event_rank(&a.kind).cmp(&event_rank(&b.kind)))
    });
    events
}

/// The sweep's line status: arcs ordered bottom-to-top within the current
/// strip, with a slot → position map and a per-strip y-value cache.
struct LineStatus {
    line: Vec<Slot>,
    pos: Vec<usize>,
    /// Arc y at the current strip midline, parallel to `line`.
    ys: Vec<f64>,
}

impl LineStatus {
    fn new(n_disks: usize) -> Self {
        LineStatus { line: Vec::new(), pos: vec![ABSENT; n_disks * 2], ys: Vec::new() }
    }

    fn len(&self) -> usize {
        self.line.len()
    }

    fn reindex_from(&mut self, from: usize) {
        for i in from..self.line.len() {
            self.pos[self.line[i] as usize] = i;
        }
    }

    fn arc_y(&self, s: Slot, disks: &[Circle], x: f64) -> f64 {
        let c = &disks[slot_disk(s) as usize];
        let kind =
            if slot_upper(s) { rnnhm_geom::ArcKind::Upper } else { rnnhm_geom::ArcKind::Lower };
        c.arc_y_at(kind, x).unwrap_or(c.c.y)
    }

    /// Inserts both arcs of `disk` adjacently, ordered by y at `probe_x`.
    /// (The position may be off by a little on almost-sorted input; the
    /// repair pass fixes it and dirties the span.)
    fn insert_disk(&mut self, disk: u32, disks: &[Circle], probe_x: f64) {
        let c = &disks[disk as usize];
        let y_new = c.y_at(probe_x).map_or(c.c.y, |(lo, _)| lo);
        let p = self.line.partition_point(|&s| self.arc_y(s, disks, probe_x) < y_new);
        self.line.insert(p, slot(disk, true));
        self.line.insert(p, slot(disk, false));
        self.reindex_from(p);
    }

    /// Removes both arcs of `disk`, returning the slots that sat strictly
    /// between them (non-empty only in degenerate inputs).
    fn remove_disk(&mut self, disk: u32) -> Vec<Slot> {
        let pl = self.pos[slot(disk, false) as usize];
        let pu = self.pos[slot(disk, true) as usize];
        debug_assert!(pl != ABSENT && pu != ABSENT, "removing absent disk arcs");
        let (lo, hi) = (pl.min(pu), pl.max(pu));
        let between: Vec<Slot> = self.line[lo + 1..hi].to_vec();
        self.line.remove(hi);
        self.line.remove(lo);
        self.pos[slot(disk, false) as usize] = ABSENT;
        self.pos[slot(disk, true) as usize] = ABSENT;
        self.reindex_from(lo);
        between
    }

    /// Re-sorts the status by arc y at `mid` (stable insertion sort on the
    /// almost-sorted sequence), refreshing the `ys` cache. Every span of
    /// positions disturbed by a move is appended to `dirty`.
    fn repair(&mut self, disks: &[Circle], mid: f64, dirty: &mut Vec<(usize, usize)>) {
        let n = self.line.len();
        self.ys.clear();
        self.ys.reserve(n);
        for &s in &self.line {
            self.ys.push(self.arc_y(s, disks, mid));
        }
        for i in 1..n {
            if self.ys[i - 1] <= self.ys[i] {
                continue;
            }
            let mut j = i;
            while j > 0 && self.ys[j - 1] > self.ys[j] {
                self.line.swap(j - 1, j);
                self.ys.swap(j - 1, j);
                j -= 1;
            }
            // Positions j..=i all shifted; their pairs may have changed.
            dirty.push((j, i));
            for k in j..=i {
                self.pos[self.line[k] as usize] = k;
            }
        }
        debug_assert!(
            self.ys.windows(2).all(|w| w[0] <= w[1]),
            "line status still unsorted after repair"
        );
    }
}

/// Merges overlapping / element-sharing position ranges (ascending).
fn merge_ranges(ranges: &mut Vec<(usize, usize)>) {
    ranges.sort_unstable();
    let mut out = 0;
    for i in 1..ranges.len() {
        let r = ranges[i];
        if r.0 <= ranges[out].1 {
            if r.1 > ranges[out].1 {
                ranges[out].1 = r.1;
            }
        } else {
            out += 1;
            ranges[out] = r;
        }
    }
    ranges.truncate(if ranges.is_empty() { 0 } else { out + 1 });
}

/// Runs CREST over a disk arrangement (the paper's CREST-L2).
///
/// Labels stream into `sink` with representative rectangles sampled at
/// the strip midline; `rect.center()` always lies inside the labeled
/// region.
pub fn crest_l2_sweep<M: InfluenceMeasure, S: RegionSink>(
    arr: &DiskArrangement,
    measure: &M,
    sink: &mut S,
) -> SweepStats {
    let events = build_events(arr);
    let disks = &arr.disks;
    let mut status = LineStatus::new(disks.len());
    let mut records: Vec<Option<Vec<u32>>> = vec![None; disks.len() * 2];
    let mut base = RnnSet::new(arr.n_clients);
    let mut stats = SweepStats::default();

    let mut i = 0;
    while i < events.len() {
        let x = events[i].x;
        let mut batch_end = i;
        while batch_end < events.len() && events[batch_end].x == x {
            batch_end += 1;
        }
        let x_next = if batch_end < events.len() { events[batch_end].x } else { x };
        let mid = (x + x_next) * 0.5;

        // Apply structural changes at this x.
        let mut inserted: Vec<u32> = Vec::new();
        let mut removal_between: Vec<(Slot, Slot)> = Vec::new();
        for ev in &events[i..batch_end] {
            match ev.kind {
                EventKind::Remove { disk } => {
                    let between = status.remove_disk(disk);
                    records[slot(disk, false) as usize] = None;
                    records[slot(disk, true) as usize] = None;
                    if between.len() >= 2 {
                        // Degenerate inputs only.
                        removal_between.push((between[0], between[between.len() - 1]));
                    }
                }
                EventKind::Cross => {} // strip delimiter; repair reorders
                EventKind::Insert { disk } => {
                    status.insert_disk(disk, disks, if x_next > x { mid } else { x });
                    inserted.push(disk);
                }
            }
        }
        i = batch_end;
        stats.events += 1;
        stats.peak_line = stats.peak_line.max(status.len());
        if x_next <= x {
            continue; // final batch: nothing to the right to label
        }

        // Restore sorted order at the new strip midline; moved spans and
        // freshly inserted pairs become the dirty ranges.
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        status.repair(disks, mid, &mut ranges);
        for disk in inserted {
            let pl = status.pos[slot(disk, false) as usize];
            let pu = status.pos[slot(disk, true) as usize];
            ranges.push((pl.min(pu), pl.max(pu)));
        }
        for (a, b) in removal_between {
            let pa = status.pos[a as usize];
            let pb = status.pos[b as usize];
            if pa != ABSENT && pb != ABSENT {
                ranges.push((pa.min(pb), pa.max(pb)));
            }
        }
        merge_ranges(&mut ranges);

        for (a, b) in ranges {
            // Base set: cached RNN set of the pair below the range.
            if a > 0 {
                let below = status.line[a - 1];
                let rec = records[below as usize]
                    .as_ref()
                    .expect("invariant: arc below a changed range has a record");
                base.load(rec);
            } else {
                base.clear();
            }
            for p in a..=b {
                let s = status.line[p];
                let owner = arr.owners[slot_disk(s) as usize];
                if slot_upper(s) {
                    base.remove(owner);
                } else {
                    base.add(owner);
                }
                records[s as usize] = Some(base.snapshot());
                if p < b {
                    let y_lo = status.ys[p];
                    let y_hi = status.ys[p + 1].max(y_lo);
                    let members = base.members();
                    let influence = measure.influence(members);
                    stats.labels += 1;
                    stats.max_rnn = stats.max_rnn.max(members.len());
                    sink.label(Rect::new(x, x_next, y_lo, y_hi), members, influence);
                }
            }
        }
    }
    debug_assert_eq!(status.len(), 0, "line status must drain");
    stats
}

/// The CREST-A analogue for disks: relabels every pair of every strip.
/// Exact strip enumerator for L2 (testing / rasterization reference).
pub fn crest_l2_full_sweep<M: InfluenceMeasure, S: RegionSink>(
    arr: &DiskArrangement,
    measure: &M,
    sink: &mut S,
) -> SweepStats {
    let events = build_events(arr);
    let disks = &arr.disks;
    let mut status = LineStatus::new(disks.len());
    let mut base = RnnSet::new(arr.n_clients);
    let mut stats = SweepStats::default();
    let mut scratch: Vec<(usize, usize)> = Vec::new();

    let mut i = 0;
    while i < events.len() {
        let x = events[i].x;
        let mut batch_end = i;
        while batch_end < events.len() && events[batch_end].x == x {
            batch_end += 1;
        }
        let x_next = if batch_end < events.len() { events[batch_end].x } else { x };
        let mid = (x + x_next) * 0.5;
        for ev in &events[i..batch_end] {
            match ev.kind {
                EventKind::Remove { disk } => {
                    status.remove_disk(disk);
                }
                EventKind::Cross => {}
                EventKind::Insert { disk } => {
                    status.insert_disk(disk, disks, if x_next > x { mid } else { x });
                }
            }
        }
        i = batch_end;
        stats.events += 1;
        stats.peak_line = stats.peak_line.max(status.len());
        if x_next <= x {
            continue;
        }
        scratch.clear();
        status.repair(disks, mid, &mut scratch);
        base.clear();
        for p in 0..status.len() {
            let s = status.line[p];
            let owner = arr.owners[slot_disk(s) as usize];
            if slot_upper(s) {
                base.remove(owner);
            } else {
                base.add(owner);
            }
            if p + 1 < status.len() {
                let y_lo = status.ys[p];
                let y_hi = status.ys[p + 1].max(y_lo);
                let members = base.members();
                let influence = measure.influence(members);
                stats.labels += 1;
                stats.max_rnn = stats.max_rnn.max(members.len());
                sink.label(Rect::new(x, x_next, y_lo, y_hi), members, influence);
            }
        }
        debug_assert!(base.is_empty());
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::CountMeasure;
    use crate::oracle::{rnn_at_disk, signature};
    use crate::sink::CollectSink;
    use rnnhm_geom::Point;

    fn arr_from_disks(disks: Vec<Circle>) -> DiskArrangement {
        let owners = (0..disks.len() as u32).collect();
        let n = disks.len();
        DiskArrangement { disks, owners, n_clients: n, dropped: 0, k: 1 }
    }

    /// Every labeled region's representative center must have exactly the
    /// labeled RNN set according to the brute-force oracle.
    ///
    /// Labels whose witness point lies within float resolution of some
    /// circle's boundary (hairline slivers from near-tangent lenses) are
    /// skipped: at that scale open-containment is not decidable in `f64`,
    /// so neither answer is checkable.
    fn check_labels_against_oracle(arr: &DiskArrangement, regions: &[crate::sink::LabeledRegion]) {
        let mut checked = 0usize;
        for r in regions {
            let center = r.rect.center();
            let ambiguous = arr.disks.iter().any(|c| (c.c.dist2(&center) - c.r).abs() < 1e-9);
            if ambiguous {
                continue;
            }
            let expect = rnn_at_disk(arr, center);
            assert_eq!(signature(&r.rnn), expect, "label at {center:?} (rect {:?})", r.rect);
            checked += 1;
        }
        assert!(
            checked * 2 >= regions.len(),
            "most labels must be unambiguous ({checked}/{})",
            regions.len()
        );
    }

    #[test]
    fn single_disk() {
        let arr = arr_from_disks(vec![Circle::new(Point::new(0.0, 0.0), 1.0)]);
        let mut sink = CollectSink::default();
        let stats = crest_l2_sweep(&arr, &CountMeasure, &mut sink);
        assert_eq!(stats.labels, 1);
        assert_eq!(sink.regions[0].rnn, vec![0]);
        check_labels_against_oracle(&arr, &sink.regions);
    }

    #[test]
    fn two_crossing_disks_fig14() {
        // Two overlapping unit circles (lens configuration, as in Fig. 14).
        let arr = arr_from_disks(vec![
            Circle::new(Point::new(0.0, 0.0), 1.0),
            Circle::new(Point::new(1.0, 0.2), 1.0),
        ]);
        let mut sink = CollectSink::default();
        let stats = crest_l2_sweep(&arr, &CountMeasure, &mut sink);
        check_labels_against_oracle(&arr, &sink.regions);
        let mut sets: Vec<Vec<u32>> = sink.regions.iter().map(|r| signature(&r.rnn)).collect();
        sets.sort();
        sets.dedup();
        assert_eq!(sets, vec![vec![0], vec![0, 1], vec![1]]);
        // 4 events from extremes + 2 crossing events.
        assert_eq!(stats.events, 6);
    }

    #[test]
    fn nested_disks() {
        let arr = arr_from_disks(vec![
            Circle::new(Point::new(0.0, 0.0), 5.0),
            Circle::new(Point::new(0.5, 0.5), 1.0),
        ]);
        let mut sink = CollectSink::default();
        crest_l2_sweep(&arr, &CountMeasure, &mut sink);
        check_labels_against_oracle(&arr, &sink.regions);
        let mut sets: Vec<Vec<u32>> = sink.regions.iter().map(|r| signature(&r.rnn)).collect();
        sets.sort();
        sets.dedup();
        assert_eq!(sets, vec![vec![0], vec![0, 1]]);
    }

    #[test]
    fn disjoint_disks() {
        let arr = arr_from_disks(vec![
            Circle::new(Point::new(0.0, 0.0), 1.0),
            Circle::new(Point::new(10.0, 0.0), 2.0),
            Circle::new(Point::new(5.0, 8.0), 1.5),
        ]);
        let mut sink = CollectSink::default();
        let stats = crest_l2_sweep(&arr, &CountMeasure, &mut sink);
        assert_eq!(stats.labels, 3);
        check_labels_against_oracle(&arr, &sink.regions);
    }

    #[test]
    fn three_mutually_crossing_disks() {
        let arr = arr_from_disks(vec![
            Circle::new(Point::new(0.0, 0.0), 1.2),
            Circle::new(Point::new(1.0, 0.1), 1.1),
            Circle::new(Point::new(0.4, 0.9), 1.0),
        ]);
        let mut sink = CollectSink::default();
        crest_l2_sweep(&arr, &CountMeasure, &mut sink);
        check_labels_against_oracle(&arr, &sink.regions);
        let mut sets: Vec<Vec<u32>> = sink.regions.iter().map(|r| signature(&r.rnn)).collect();
        sets.sort();
        sets.dedup();
        // All seven non-empty subsets exist for a generic triple overlap.
        assert_eq!(sets.len(), 7, "sets: {sets:?}");
    }

    #[test]
    fn full_sweep_matches_optimized_signatures() {
        let arr = arr_from_disks(vec![
            Circle::new(Point::new(0.0, 0.0), 1.5),
            Circle::new(Point::new(1.2, 0.3), 1.0),
            Circle::new(Point::new(-0.5, 1.0), 0.8),
            Circle::new(Point::new(0.3, -1.1), 1.3),
        ]);
        let mut a = CollectSink::default();
        let mut b = CollectSink::default();
        let s_opt = crest_l2_sweep(&arr, &CountMeasure, &mut a);
        let s_full = crest_l2_full_sweep(&arr, &CountMeasure, &mut b);
        check_labels_against_oracle(&arr, &a.regions);
        check_labels_against_oracle(&arr, &b.regions);
        let mut sa: Vec<Vec<u32>> = a.regions.iter().map(|r| signature(&r.rnn)).collect();
        let mut sb: Vec<Vec<u32>> = b.regions.iter().map(|r| signature(&r.rnn)).collect();
        sa.sort();
        sa.dedup();
        sb.sort();
        sb.dedup();
        assert_eq!(sa, sb);
        assert!(s_opt.labels <= s_full.labels);
    }

    #[test]
    fn random_disks_against_oracle() {
        // Pseudo-random disk soup; every label checked against the oracle.
        let mut state = 0xabcdef99u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for round in 0..10 {
            let n = 3 + (round % 5);
            let disks: Vec<Circle> = (0..n)
                .map(|_| Circle::new(Point::new(next() * 4.0, next() * 4.0), 0.3 + next() * 1.2))
                .collect();
            let arr = arr_from_disks(disks);
            let mut sink = CollectSink::default();
            crest_l2_sweep(&arr, &CountMeasure, &mut sink);
            check_labels_against_oracle(&arr, &sink.regions);
            assert!(!sink.regions.is_empty());
        }
    }

    #[test]
    fn dense_nn_circle_workload_against_oracle() {
        // The configuration that exposed order drift: many NN-circles from
        // clustered clients sharing few facilities (shallow crossings near
        // extremes). Every label must still match the oracle.
        let mut state = 0x1234u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let clients: Vec<Point> = (0..80).map(|_| Point::new(next(), next())).collect();
        let facilities: Vec<Point> = (0..6).map(|_| Point::new(next(), next())).collect();
        let arr = crate::arrangement::build_disk_arrangement(
            &clients,
            &facilities,
            crate::Mode::Bichromatic,
        )
        .unwrap();
        let mut sink = CollectSink::default();
        let stats = crest_l2_sweep(&arr, &CountMeasure, &mut sink);
        assert!(stats.labels > 80, "dense instance should have many regions");
        check_labels_against_oracle(&arr, &sink.regions);
    }
}
