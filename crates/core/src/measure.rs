//! Influence measures — real-valued functions of an RNN set (paper §I, §III).
//!
//! The heat of a region is `measure(R)` for its RNN set `R`. The paper
//! stresses that CREST is generic over the measure; the measures here are
//! the ones its examples and experiments use:
//!
//! * [`CountMeasure`] — `|R|` (Korn & Muthukrishnan [12]; used for the
//!   showcase heat maps of Figs 1 and 15),
//! * [`WeightedMeasure`] — sum of client weights [12],
//! * [`CapacityMeasure`] — the capacity-constrained utility of [22]
//!   (courier scenario; used with the pruning comparator in Figs 18–19),
//! * [`ConnectivityMeasure`] — number of "compatible passenger" edges
//!   inside `R` (the taxi-sharing scenario of Fig 3).

/// A real-valued influence function over RNN sets.
///
/// `rnn` is the unordered list of client ids in the region's RNN set.
pub trait InfluenceMeasure {
    /// The influence (heat) of a region whose RNN set is `rnn`.
    fn influence(&self, rnn: &[u32]) -> f64;

    /// An *admissible* optimistic bound used by branch-and-bound search:
    /// the influence of any region whose RNN set contains all of `inside`
    /// and any subset of `undecided` must not exceed this value.
    ///
    /// The default evaluates the measure on `inside ∪ undecided`, which is
    /// admissible for monotone measures (count, weight). Non-monotone
    /// measures must override it.
    fn upper_bound(&self, inside: &[u32], undecided: &[u32]) -> f64 {
        let mut all = Vec::with_capacity(inside.len() + undecided.len());
        all.extend_from_slice(inside);
        all.extend_from_slice(undecided);
        self.influence(&all)
    }
}

/// `|R|`: the size of the RNN set.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountMeasure;

impl InfluenceMeasure for CountMeasure {
    #[inline]
    fn influence(&self, rnn: &[u32]) -> f64 {
        rnn.len() as f64
    }

    #[inline]
    fn upper_bound(&self, inside: &[u32], undecided: &[u32]) -> f64 {
        (inside.len() + undecided.len()) as f64
    }
}

/// Sum of per-client weights.
#[derive(Debug, Clone)]
pub struct WeightedMeasure {
    weights: Vec<f64>,
}

impl WeightedMeasure {
    /// Creates the measure from one non-negative weight per client id.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(weights.iter().all(|w| *w >= 0.0), "weights must be non-negative");
        WeightedMeasure { weights }
    }
}

impl InfluenceMeasure for WeightedMeasure {
    #[inline]
    fn influence(&self, rnn: &[u32]) -> f64 {
        rnn.iter().map(|&id| self.weights[id as usize]).sum()
    }
}

/// The capacity-constrained utility of [22] (paper §I, footnote 1):
///
/// ```text
/// influence(p) = Σ_{f ∈ F ∪ {p}} min(c(f), |R(f)|)
/// ```
///
/// where placing `p` moves the clients of `R(p)` away from their current
/// facilities. We report the utility *delta-normalised*: the total served
/// after placing `p`. Clients keep their facility unless `p` is closer, so
/// `R(f)` shrinks by the members of `R(p)` currently assigned to `f`.
#[derive(Debug, Clone)]
pub struct CapacityMeasure {
    /// `assigned[o]` = facility id currently serving client `o`.
    assigned: Vec<u32>,
    /// Facility capacities.
    capacities: Vec<u32>,
    /// `|R(f)|` before placing the new facility.
    base_counts: Vec<u32>,
    /// `Σ_f min(c(f), |R(f)|)` before placing the new facility.
    base_total: f64,
    /// Capacity of the candidate facility.
    new_capacity: u32,
}

impl CapacityMeasure {
    /// Builds the measure.
    ///
    /// * `assigned[o]` — current NN facility of client `o`,
    /// * `capacities[f]` — capacity of facility `f`,
    /// * `new_capacity` — capacity of the candidate location.
    pub fn new(assigned: Vec<u32>, capacities: Vec<u32>, new_capacity: u32) -> Self {
        let mut base_counts = vec![0u32; capacities.len()];
        for &f in &assigned {
            base_counts[f as usize] += 1;
        }
        let base_total = base_counts
            .iter()
            .zip(&capacities)
            .map(|(&n, &c)| n.min(c) as f64)
            .sum();
        CapacityMeasure { assigned, capacities, base_counts, base_total, new_capacity }
    }

    /// The served total before any new facility is placed.
    pub fn base_total(&self) -> f64 {
        self.base_total
    }
}

impl InfluenceMeasure for CapacityMeasure {
    fn influence(&self, rnn: &[u32]) -> f64 {
        // Tally, per facility, how many of its clients defect to `p`.
        // λ is small; a linear-probe vector beats hashing here.
        let mut moved: Vec<(u32, u32)> = Vec::with_capacity(rnn.len().min(16));
        for &o in rnn {
            let f = self.assigned[o as usize];
            match moved.iter_mut().find(|(g, _)| *g == f) {
                Some((_, c)) => *c += 1,
                None => moved.push((f, 1)),
            }
        }
        let mut total = self.base_total;
        for &(f, m) in &moved {
            let c = self.capacities[f as usize];
            let before = self.base_counts[f as usize];
            total -= before.min(c) as f64;
            total += (before - m).min(c) as f64;
        }
        total + (rnn.len() as u32).min(self.new_capacity) as f64
    }

    fn upper_bound(&self, inside: &[u32], undecided: &[u32]) -> f64 {
        // Optimistic: no facility loses served clients (defectors only come
        // from over-capacity facilities), and the new facility serves as
        // many of `inside ∪ undecided` as it can.
        let gain = ((inside.len() + undecided.len()) as u32).min(self.new_capacity) as f64;
        self.base_total + gain
    }
}

/// Number of "compatibility" edges with both endpoints inside the RNN set
/// (the taxi-sharing measure of Fig 3: passengers connected by an edge can
/// share a ride).
#[derive(Debug, Clone)]
pub struct ConnectivityMeasure {
    /// Adjacency lists over client ids; every edge appears in both lists.
    adj: Vec<Vec<u32>>,
}

impl ConnectivityMeasure {
    /// Builds the measure from an undirected edge list over client ids.
    pub fn from_edges(n_clients: usize, edges: &[(u32, u32)]) -> Self {
        let mut adj = vec![Vec::new(); n_clients];
        for &(a, b) in edges {
            assert_ne!(a, b, "self loops are not meaningful");
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        ConnectivityMeasure { adj }
    }
}

impl InfluenceMeasure for ConnectivityMeasure {
    fn influence(&self, rnn: &[u32]) -> f64 {
        let mut sorted = rnn.to_vec();
        sorted.sort_unstable();
        let mut twice_edges = 0u64;
        for &o in rnn {
            for nb in &self.adj[o as usize] {
                if sorted.binary_search(nb).is_ok() {
                    twice_edges += 1;
                }
            }
        }
        (twice_edges / 2) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_measure() {
        let m = CountMeasure;
        assert_eq!(m.influence(&[]), 0.0);
        assert_eq!(m.influence(&[3, 1, 2]), 3.0);
        assert_eq!(m.upper_bound(&[1], &[2, 3]), 3.0);
    }

    #[test]
    fn weighted_measure() {
        let m = WeightedMeasure::new(vec![1.0, 2.0, 0.5]);
        assert_eq!(m.influence(&[0, 2]), 1.5);
        assert_eq!(m.influence(&[1]), 2.0);
        assert_eq!(m.upper_bound(&[0], &[1, 2]), 3.5);
    }

    #[test]
    fn fig3_connectivity() {
        // Paper Fig. 3: O = {o0..o3}, edges connect o0–o1, o0–o3, o1–o3
        // (the paper draws o1, o2, o4 connected; ids here are 0-based:
        // o1→0, o2→1, o3→2, o4→3).
        let m = ConnectivityMeasure::from_edges(4, &[(0, 1), (0, 3), (1, 3)]);
        // RNN set {o1, o2, o4} = {0, 1, 3} has all three edges: heat 3.0.
        assert_eq!(m.influence(&[0, 1, 3]), 3.0);
        // RNN set {o1, o3, o4} = {0, 2, 3} has only edge o1–o4: heat 1.0.
        assert_eq!(m.influence(&[0, 2, 3]), 1.0);
        // Singletons and empty sets have no edges.
        assert_eq!(m.influence(&[2]), 0.0);
        assert_eq!(m.influence(&[]), 0.0);
    }

    #[test]
    fn capacity_measure_matches_definition() {
        // Two facilities: f0 capacity 1 serving clients {0, 1};
        // f1 capacity 5 serving client {2}. Base total = min(1,2) + min(5,1) = 2.
        let m = CapacityMeasure::new(vec![0, 0, 1], vec![1, 5], 2);
        assert_eq!(m.base_total(), 2.0);
        // Empty RNN set: nothing changes, plus an empty new facility.
        assert_eq!(m.influence(&[]), 2.0);
        // R(p) = {0}: f0 drops to 1 client (still ≥ cap 1, serves 1),
        // new facility serves 1. Total = 1 + 1 + 1 = 3.
        assert_eq!(m.influence(&[0]), 3.0);
        // R(p) = {0, 1, 2}: f0 serves 0, f1 serves 0, p serves min(3,2)=2.
        assert_eq!(m.influence(&[0, 1, 2]), 2.0);
        // Upper bound is admissible: bound({0}, {1,2}) ≥ both extensions.
        let ub = m.upper_bound(&[0], &[1, 2]);
        assert!(ub >= m.influence(&[0]));
        assert!(ub >= m.influence(&[0, 1]));
        assert!(ub >= m.influence(&[0, 1, 2]));
    }

    #[test]
    fn capacity_upper_bound_is_admissible_randomized() {
        // Randomized admissibility check across many configurations.
        let mut state = 99u64;
        let mut next = |m: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for _ in 0..200 {
            let nf = 1 + next(4) as usize;
            let nc = 1 + next(10) as usize;
            let assigned: Vec<u32> = (0..nc).map(|_| next(nf as u64) as u32).collect();
            let capacities: Vec<u32> = (0..nf).map(|_| 1 + next(3) as u32).collect();
            let measure = CapacityMeasure::new(assigned, capacities, 1 + next(4) as u32);
            let all: Vec<u32> = (0..nc as u32).collect();
            let split = next(nc as u64 + 1) as usize;
            let (inside, undecided) = all.split_at(split);
            let ub = measure.upper_bound(inside, undecided);
            // Any subset S with inside ⊆ S ⊆ inside ∪ undecided must be ≤ ub.
            for mask in 0..(1u32 << undecided.len().min(8)) {
                let mut s = inside.to_vec();
                for (b, &u) in undecided.iter().enumerate().take(8) {
                    if mask & (1 << b) != 0 {
                        s.push(u);
                    }
                }
                assert!(
                    measure.influence(&s) <= ub + 1e-9,
                    "ub {ub} violated by subset {s:?}"
                );
            }
        }
    }

    #[test]
    fn connectivity_ignores_outside_edges() {
        let m = ConnectivityMeasure::from_edges(6, &[(0, 1), (1, 2), (4, 5)]);
        assert_eq!(m.influence(&[0, 1, 2]), 2.0);
        assert_eq!(m.influence(&[0, 2]), 0.0); // 0–2 not an edge
        assert_eq!(m.influence(&[4, 5]), 1.0);
        assert_eq!(m.influence(&[0, 1, 4]), 1.0);
    }
}
