//! Influence measures — real-valued functions of an RNN set (paper §I, §III).
//!
//! The heat of a region is `measure(R)` for its RNN set `R`. The paper
//! stresses that CREST is generic over the measure; the measures here are
//! the ones its examples and experiments use:
//!
//! * [`CountMeasure`] — `|R|` (Korn & Muthukrishnan \[12\]; used for the
//!   showcase heat maps of Figs 1 and 15),
//! * [`WeightedMeasure`] — sum of client weights \[12\],
//! * [`CapacityMeasure`] — the capacity-constrained utility of \[22\]
//!   (courier scenario; used with the pruning comparator in Figs 18–19),
//! * [`ConnectivityMeasure`] — number of "compatible passenger" edges
//!   inside `R` (the taxi-sharing scenario of Fig 3).
//!
//! All four also implement [`IncrementalMeasure`] — constant-or-cheap
//! add/remove/current maintenance of the influence value as clients
//! enter and leave the RNN set, which the scanline rasterizer exploits.
//! Custom measures get the same interface via [`ExactFallback`].

/// A real-valued influence function over RNN sets.
///
/// `rnn` is the unordered list of client ids in the region's RNN set.
pub trait InfluenceMeasure {
    /// The influence (heat) of a region whose RNN set is `rnn`.
    fn influence(&self, rnn: &[u32]) -> f64;

    /// An *admissible* optimistic bound used by branch-and-bound search:
    /// the influence of any region whose RNN set contains all of `inside`
    /// and any subset of `undecided` must not exceed this value.
    ///
    /// The default evaluates the measure on `inside ∪ undecided`, which is
    /// admissible for monotone measures (count, weight). Non-monotone
    /// measures must override it.
    fn upper_bound(&self, inside: &[u32], undecided: &[u32]) -> f64 {
        let mut all = Vec::with_capacity(inside.len() + undecided.len());
        all.extend_from_slice(inside);
        all.extend_from_slice(undecided);
        self.influence(&all)
    }

    /// *Delta hook*: the influence of a region after a small,
    /// known change to its RNN set — `added` entered, `removed` left —
    /// given the previous membership `old_rnn` and its previous
    /// influence `old_influence`.
    ///
    /// What-if facility edits (`crate::edit::DynamicArrangement`)
    /// change few NN-circles, so most surviving labeled regions see a
    /// tiny membership delta; this hook lets their values update
    /// without re-evaluating the measure on the whole set. The default
    /// rebuilds the new membership list and recomputes — always
    /// correct, `O(|R|)`. Decomposable measures override it with `O(Δ)`
    /// arithmetic:
    ///
    /// * [`CountMeasure`]: `old + |added| − |removed|` (exact),
    /// * [`WeightedMeasure`]: `old + Σw(added) − Σw(removed)` — exact
    ///   when the weights sum exactly (dyadic rationals), otherwise up
    ///   to f64 rounding of the delta order, mirroring the
    ///   [`IncrementalMeasure`] contract.
    ///
    /// Callers must ensure `added` entries are not in `old_rnn` and
    /// `removed` entries are (each at most once).
    fn influence_delta(
        &self,
        old_influence: f64,
        old_rnn: &[u32],
        added: &[u32],
        removed: &[u32],
    ) -> f64 {
        let _ = old_influence;
        let mut rnn: Vec<u32> =
            old_rnn.iter().copied().filter(|id| !removed.contains(id)).collect();
        rnn.extend_from_slice(added);
        self.influence(&rnn)
    }

    /// An admissible optimistic bound computable from the sweep's *raw*
    /// emission of a region's RNN set — unordered and possibly
    /// containing duplicates, i.e. *before* the canonical sort/dedup of
    /// [`crate::oracle::signature`]: the value must be at least
    /// `influence(signature(raw))`.
    ///
    /// The streaming argmax of `crate::placement` uses it to skip
    /// canonicalizing (sorting + deduplicating) regions that cannot
    /// beat the incumbent best, which is what makes a full-arrangement
    /// argmax sweep cheap at scale. The default — no bound — is always
    /// admissible and simply disables that skip. Only override with
    /// duplicate-insensitive, rounding-safe bounds (e.g. a count);
    /// order-dependent f64 accumulations (a weight sum) can round an
    /// ulp below the canonical value and are **not** safe here.
    fn raw_upper_bound(&self, raw: &[u32]) -> f64 {
        let _ = raw;
        f64::INFINITY
    }

    /// Whether the measure's influence is always an integer-valued
    /// `f64` (counts, capacities, edge counts — everything the paper's
    /// experiments evaluate except arbitrary weights).
    ///
    /// Downstream consumers use this as an *eligibility hint* for
    /// lossless integer-offset quantization of cached artifacts (e.g.
    /// `rnnhm_heatmap::quant` tile payloads). It is a hint only:
    /// quantizers must still verify round-trips bitwise, so a wrong
    /// answer costs compactness, never correctness. The conservative
    /// default is `false`.
    fn integral_influence(&self) -> bool {
        false
    }

    /// A stable key identifying this measure — type *and* parameters —
    /// for caches of derived artifacts (e.g. the rendered heat-map
    /// tiles of `rnnhm_heatmap::tiles`): two measures with the same key
    /// must assign the same influence to every RNN set.
    ///
    /// The default hashes the concrete type name, which is sound only
    /// for parameterless measures; **measures carrying parameters must
    /// override it** to mix the parameters in (as the weighted,
    /// capacity and connectivity measures here do).
    fn cache_key(&self) -> u64 {
        crate::arrangement::fnv1a_words(std::any::type_name::<Self>().bytes().map(|b| b as u64))
    }
}

/// A measure that can maintain its value *incrementally* as single
/// clients enter and leave the RNN set.
///
/// The scanline rasterizer (`rnnhm_heatmap::compute`) sweeps each pixel
/// row once, updating the active RNN set at interval endpoints instead of
/// recomputing it per pixel; between two endpoints the influence is
/// constant. That turns the per-pixel measure cost into a per-*event*
/// cost, but requires the measure to expose add/remove/current
/// operations over some running [`IncrementalMeasure::State`].
///
/// # Contract
///
/// For any sequence of `add`/`remove` calls describing a set `R`
/// (each id added at most once before being removed, as NN-circles have
/// one owner each), `current(&state)` must equal
/// `influence(&r)` for a slice `r` holding `R` in *some* order:
///
/// * measures whose influence is an order-independent exact computation
///   (integer-valued counts, capacities, edge counts — everything the
///   paper evaluates) are **bit-identical** to any
///   [`InfluenceMeasure::influence`] call on the same set;
/// * measures summing arbitrary floating-point weights are exact up to
///   f64 addition order (bit-identical when the weights sum exactly,
///   e.g. small dyadic rationals — see `WeightedMeasure`).
///
/// Non-decomposable measures can fall back to [`ExactFallback`], which
/// stores the member list and re-evaluates the measure per event run.
pub trait IncrementalMeasure: InfluenceMeasure {
    /// The running state: whatever the measure needs to answer
    /// [`IncrementalMeasure::current`] in `O(1)`-ish time.
    type State: Clone + Send;

    /// A state describing the empty RNN set.
    fn new_state(&self) -> Self::State;

    /// Client `id` enters the RNN set.
    fn add(&self, state: &mut Self::State, id: u32);

    /// Client `id` leaves the RNN set.
    fn remove(&self, state: &mut Self::State, id: u32);

    /// The influence of the current RNN set.
    fn current(&self, state: &Self::State) -> f64;

    /// *Additive hook*: client `id`'s fixed contribution, when the
    /// measure is an exact sum of per-member deltas.
    ///
    /// Returning `Some(d)` for every member promises that for **any**
    /// reachable RNN set, [`IncrementalMeasure::current`] equals the
    /// f64 sum of the members' deltas **bitwise, under any order or
    /// grouping of additions and subtractions**, with the empty set
    /// summing to `+0.0`. That licenses renderers to replace the
    /// event sweep with difference-array accumulation (see the
    /// scanline rasterizer's additive path). Counts qualify (integer
    /// arithmetic below 2⁵³ is exact in f64); weighted sums do *not*
    /// — their rounding and `-0.0` empty-sum identity are order
    /// dependent — and default to `None`.
    #[inline]
    fn additive_delta(&self, id: u32) -> Option<f64> {
        let _ = id;
        None
    }

    /// *Delta hook*: a running state describing the membership `rnn`
    /// (each member added once, in slice order).
    ///
    /// This is the bridge from a materialized RNN set — e.g. a labeled
    /// region surviving a what-if edit — back into incremental
    /// maintenance: build the state once, then replay the edit's
    /// membership delta with [`IncrementalMeasure::add`] /
    /// [`IncrementalMeasure::remove`] instead of re-evaluating the
    /// measure from scratch per change.
    fn state_for(&self, rnn: &[u32]) -> Self::State {
        let mut state = self.new_state();
        for &id in rnn {
            self.add(&mut state, id);
        }
        state
    }
}

/// Adapts *any* [`InfluenceMeasure`] to [`IncrementalMeasure`] by keeping
/// the member list and re-evaluating the measure on demand.
///
/// `current` costs one full `influence` call, so a scanline sweep pays
/// `O(measure)` per *event run* instead of per pixel — still a large win
/// over per-pixel evaluation, just not `O(1)`. Member order follows
/// insertion order (with swap-removal), so order-sensitive float
/// rounding may differ from another evaluation order by ~1 ULP.
#[derive(Debug, Clone)]
pub struct ExactFallback<M>(pub M);

impl<M: InfluenceMeasure> InfluenceMeasure for ExactFallback<M> {
    #[inline]
    fn influence(&self, rnn: &[u32]) -> f64 {
        self.0.influence(rnn)
    }

    #[inline]
    fn upper_bound(&self, inside: &[u32], undecided: &[u32]) -> f64 {
        self.0.upper_bound(inside, undecided)
    }

    #[inline]
    fn integral_influence(&self) -> bool {
        self.0.integral_influence()
    }

    fn cache_key(&self) -> u64 {
        // The wrapper computes the same influence as the inner measure,
        // so it shares the inner cache identity.
        self.0.cache_key()
    }
}

impl<M: InfluenceMeasure> IncrementalMeasure for ExactFallback<M> {
    type State = Vec<u32>;

    fn new_state(&self) -> Vec<u32> {
        Vec::new()
    }

    fn add(&self, state: &mut Vec<u32>, id: u32) {
        state.push(id);
    }

    fn remove(&self, state: &mut Vec<u32>, id: u32) {
        let pos =
            state.iter().position(|&m| m == id).expect("removing an id that is not in the RNN set");
        state.swap_remove(pos);
    }

    fn current(&self, state: &Vec<u32>) -> f64 {
        self.0.influence(state)
    }
}

/// `|R|`: the size of the RNN set.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountMeasure;

impl InfluenceMeasure for CountMeasure {
    #[inline]
    fn influence(&self, rnn: &[u32]) -> f64 {
        rnn.len() as f64
    }

    #[inline]
    fn upper_bound(&self, inside: &[u32], undecided: &[u32]) -> f64 {
        (inside.len() + undecided.len()) as f64
    }

    #[inline]
    fn influence_delta(
        &self,
        old_influence: f64,
        _old_rnn: &[u32],
        added: &[u32],
        removed: &[u32],
    ) -> f64 {
        // Counts below 2^53 are exact in f64, so the delta is bitwise
        // equal to a recount.
        old_influence + added.len() as f64 - removed.len() as f64
    }

    #[inline]
    fn raw_upper_bound(&self, raw: &[u32]) -> f64 {
        // Duplicates only inflate the length, so this stays admissible
        // (and is exact when the emission is duplicate-free).
        raw.len() as f64
    }

    #[inline]
    fn integral_influence(&self) -> bool {
        true
    }
}

impl IncrementalMeasure for CountMeasure {
    type State = usize;

    #[inline]
    fn new_state(&self) -> usize {
        0
    }

    #[inline]
    fn add(&self, state: &mut usize, _id: u32) {
        *state += 1;
    }

    #[inline]
    fn remove(&self, state: &mut usize, _id: u32) {
        *state -= 1;
    }

    #[inline]
    fn current(&self, state: &usize) -> f64 {
        *state as f64
    }

    #[inline]
    fn additive_delta(&self, _id: u32) -> Option<f64> {
        // |R| is a sum of 1.0s: exact integers in f64 in every order.
        Some(1.0)
    }
}

/// Sum of per-client weights.
#[derive(Debug, Clone)]
pub struct WeightedMeasure {
    weights: Vec<f64>,
}

impl WeightedMeasure {
    /// Creates the measure from one non-negative weight per client id.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(weights.iter().all(|w| *w >= 0.0), "weights must be non-negative");
        WeightedMeasure { weights }
    }
}

impl InfluenceMeasure for WeightedMeasure {
    #[inline]
    fn influence(&self, rnn: &[u32]) -> f64 {
        rnn.iter().map(|&id| self.weights[id as usize]).sum()
    }

    fn influence_delta(
        &self,
        old_influence: f64,
        _old_rnn: &[u32],
        added: &[u32],
        removed: &[u32],
    ) -> f64 {
        // Exact when the weights sum exactly (dyadic rationals);
        // otherwise within f64 rounding of the delta order.
        let gain: f64 = added.iter().map(|&id| self.weights[id as usize]).sum();
        let loss: f64 = removed.iter().map(|&id| self.weights[id as usize]).sum();
        old_influence + gain - loss
    }

    fn cache_key(&self) -> u64 {
        crate::arrangement::fnv1a_words(
            [0x5754u64, self.weights.len() as u64] // "WT"
                .into_iter()
                .chain(self.weights.iter().map(|w| w.to_bits())),
        )
    }
}

/// Running state of [`WeightedMeasure`]: the weight sum plus the member
/// count. The sum snaps back to the empty-sum identity whenever the set
/// empties, so rounding drift cannot leak across disjoint intervals of
/// a scan.
///
/// The empty sum is `-0.0`, matching `Iterator::sum::<f64>()` over an
/// empty iterator (std uses the true floating-point additive identity),
/// so an empty incremental state is bit-identical to
/// `WeightedMeasure::influence(&[])`.
#[derive(Debug, Clone, Copy)]
pub struct WeightedState {
    sum: f64,
    len: usize,
}

/// `Iterator::sum::<f64>()` of nothing — the f64 additive identity.
const EMPTY_SUM: f64 = -0.0;

impl IncrementalMeasure for WeightedMeasure {
    type State = WeightedState;

    #[inline]
    fn new_state(&self) -> WeightedState {
        WeightedState { sum: EMPTY_SUM, len: 0 }
    }

    #[inline]
    fn add(&self, state: &mut WeightedState, id: u32) {
        state.sum += self.weights[id as usize];
        state.len += 1;
    }

    #[inline]
    fn remove(&self, state: &mut WeightedState, id: u32) {
        state.sum -= self.weights[id as usize];
        state.len -= 1;
        if state.len == 0 {
            state.sum = EMPTY_SUM;
        }
    }

    #[inline]
    fn current(&self, state: &WeightedState) -> f64 {
        state.sum
    }
}

/// The capacity-constrained utility of \[22\] (paper §I, footnote 1):
///
/// ```text
/// influence(p) = Σ_{f ∈ F ∪ {p}} min(c(f), |R(f)|)
/// ```
///
/// where placing `p` moves the clients of `R(p)` away from their current
/// facilities. We report the utility *delta-normalised*: the total served
/// after placing `p`. Clients keep their facility unless `p` is closer, so
/// `R(f)` shrinks by the members of `R(p)` currently assigned to `f`.
#[derive(Debug, Clone)]
pub struct CapacityMeasure {
    /// `assigned[o]` = facility id currently serving client `o`.
    assigned: Vec<u32>,
    /// Facility capacities.
    capacities: Vec<u32>,
    /// `|R(f)|` before placing the new facility.
    base_counts: Vec<u32>,
    /// `Σ_f min(c(f), |R(f)|)` before placing the new facility.
    base_total: f64,
    /// Capacity of the candidate facility.
    new_capacity: u32,
}

impl CapacityMeasure {
    /// Builds the measure.
    ///
    /// * `assigned[o]` — current NN facility of client `o`,
    /// * `capacities[f]` — capacity of facility `f`,
    /// * `new_capacity` — capacity of the candidate location.
    pub fn new(assigned: Vec<u32>, capacities: Vec<u32>, new_capacity: u32) -> Self {
        let mut base_counts = vec![0u32; capacities.len()];
        for &f in &assigned {
            base_counts[f as usize] += 1;
        }
        let base_total = base_counts.iter().zip(&capacities).map(|(&n, &c)| n.min(c) as f64).sum();
        CapacityMeasure { assigned, capacities, base_counts, base_total, new_capacity }
    }

    /// The served total before any new facility is placed.
    pub fn base_total(&self) -> f64 {
        self.base_total
    }
}

impl InfluenceMeasure for CapacityMeasure {
    fn influence(&self, rnn: &[u32]) -> f64 {
        // Tally, per facility, how many of its clients defect to `p`.
        // λ is small; a linear-probe vector beats hashing here.
        let mut moved: Vec<(u32, u32)> = Vec::with_capacity(rnn.len().min(16));
        for &o in rnn {
            let f = self.assigned[o as usize];
            match moved.iter_mut().find(|(g, _)| *g == f) {
                Some((_, c)) => *c += 1,
                None => moved.push((f, 1)),
            }
        }
        let mut total = self.base_total;
        for &(f, m) in &moved {
            let c = self.capacities[f as usize];
            let before = self.base_counts[f as usize];
            total -= before.min(c) as f64;
            total += (before - m).min(c) as f64;
        }
        total + (rnn.len() as u32).min(self.new_capacity) as f64
    }

    fn upper_bound(&self, inside: &[u32], undecided: &[u32]) -> f64 {
        // Optimistic: no facility loses served clients (defectors only come
        // from over-capacity facilities), and the new facility serves as
        // many of `inside ∪ undecided` as it can.
        let gain = ((inside.len() + undecided.len()) as u32).min(self.new_capacity) as f64;
        self.base_total + gain
    }

    #[inline]
    fn integral_influence(&self) -> bool {
        // Served-client totals are integers below 2^53.
        true
    }

    fn cache_key(&self) -> u64 {
        crate::arrangement::fnv1a_words(
            [0x4341u64, self.new_capacity as u64, self.assigned.len() as u64] // "CA"
                .into_iter()
                .chain(self.assigned.iter().map(|&a| a as u64))
                .chain(self.capacities.iter().map(|&c| c as u64)),
        )
    }
}

/// Running state of [`CapacityMeasure`]: per-facility defection counts
/// plus the integer change in served clients across existing facilities.
///
/// Every quantity involved is an integer below 2^53, so the incremental
/// value is bit-identical to [`CapacityMeasure::influence`] on the same
/// set regardless of evaluation order.
#[derive(Debug, Clone)]
pub struct CapacityState {
    /// `moved[f]` = members of the running RNN set assigned to `f`.
    moved: Vec<u32>,
    /// `Σ_f [min(|R(f)|−moved[f], c(f)) − min(|R(f)|, c(f))]`.
    served_delta: i64,
    /// Size of the running RNN set.
    len: usize,
}

impl CapacityMeasure {
    /// Served-count contribution of facility `f` when `m` of its clients
    /// have defected to the candidate.
    #[inline]
    fn served(&self, f: usize, m: u32) -> i64 {
        let before = self.base_counts[f];
        debug_assert!(m <= before, "more defectors than clients at facility {f}");
        (before - m).min(self.capacities[f]) as i64
    }
}

impl IncrementalMeasure for CapacityMeasure {
    type State = CapacityState;

    fn new_state(&self) -> CapacityState {
        CapacityState { moved: vec![0; self.capacities.len()], served_delta: 0, len: 0 }
    }

    fn add(&self, state: &mut CapacityState, id: u32) {
        let f = self.assigned[id as usize] as usize;
        let m = state.moved[f];
        state.served_delta += self.served(f, m + 1) - self.served(f, m);
        state.moved[f] = m + 1;
        state.len += 1;
    }

    fn remove(&self, state: &mut CapacityState, id: u32) {
        let f = self.assigned[id as usize] as usize;
        let m = state.moved[f];
        debug_assert!(m > 0, "removing from a facility with no defectors");
        state.served_delta += self.served(f, m - 1) - self.served(f, m);
        state.moved[f] = m - 1;
        state.len -= 1;
    }

    fn current(&self, state: &CapacityState) -> f64 {
        // All terms are integers < 2^53: exact in f64, any order.
        self.base_total
            + state.served_delta as f64
            + (state.len as u32).min(self.new_capacity) as f64
    }
}

/// Number of "compatibility" edges with both endpoints inside the RNN set
/// (the taxi-sharing measure of Fig 3: passengers connected by an edge can
/// share a ride).
#[derive(Debug, Clone)]
pub struct ConnectivityMeasure {
    /// Adjacency lists over client ids; every edge appears in both lists.
    adj: Vec<Vec<u32>>,
}

impl ConnectivityMeasure {
    /// Builds the measure from an undirected edge list over client ids.
    pub fn from_edges(n_clients: usize, edges: &[(u32, u32)]) -> Self {
        let mut adj = vec![Vec::new(); n_clients];
        for &(a, b) in edges {
            assert_ne!(a, b, "self loops are not meaningful");
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        ConnectivityMeasure { adj }
    }
}

impl InfluenceMeasure for ConnectivityMeasure {
    fn influence(&self, rnn: &[u32]) -> f64 {
        let mut sorted = rnn.to_vec();
        sorted.sort_unstable();
        let mut twice_edges = 0u64;
        for &o in rnn {
            for nb in &self.adj[o as usize] {
                if sorted.binary_search(nb).is_ok() {
                    twice_edges += 1;
                }
            }
        }
        (twice_edges / 2) as f64
    }

    #[inline]
    fn integral_influence(&self) -> bool {
        // Edge counts are integers.
        true
    }

    fn cache_key(&self) -> u64 {
        crate::arrangement::fnv1a_words([0x434eu64, self.adj.len() as u64].into_iter().chain(
            self.adj.iter().flat_map(|nbrs| {
                // "CN"; adjacency lists in id order pin the edge set.
                std::iter::once(nbrs.len() as u64).chain(nbrs.iter().map(|&n| n as u64))
            }),
        ))
    }
}

/// Running state of [`ConnectivityMeasure`]: a membership bitmap plus the
/// count of edges with both endpoints present. Updates cost `O(deg)`.
#[derive(Debug, Clone)]
pub struct ConnectivityState {
    present: Vec<bool>,
    edges: u64,
}

impl IncrementalMeasure for ConnectivityMeasure {
    type State = ConnectivityState;

    fn new_state(&self) -> ConnectivityState {
        ConnectivityState { present: vec![false; self.adj.len()], edges: 0 }
    }

    fn add(&self, state: &mut ConnectivityState, id: u32) {
        debug_assert!(!state.present[id as usize], "duplicate add of client {id}");
        state.edges +=
            self.adj[id as usize].iter().filter(|&&nb| state.present[nb as usize]).count() as u64;
        state.present[id as usize] = true;
    }

    fn remove(&self, state: &mut ConnectivityState, id: u32) {
        state.present[id as usize] = false;
        state.edges -=
            self.adj[id as usize].iter().filter(|&&nb| state.present[nb as usize]).count() as u64;
    }

    fn current(&self, state: &ConnectivityState) -> f64 {
        state.edges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_measure() {
        let m = CountMeasure;
        assert_eq!(m.influence(&[]), 0.0);
        assert_eq!(m.influence(&[3, 1, 2]), 3.0);
        assert_eq!(m.upper_bound(&[1], &[2, 3]), 3.0);
    }

    #[test]
    fn weighted_measure() {
        let m = WeightedMeasure::new(vec![1.0, 2.0, 0.5]);
        assert_eq!(m.influence(&[0, 2]), 1.5);
        assert_eq!(m.influence(&[1]), 2.0);
        assert_eq!(m.upper_bound(&[0], &[1, 2]), 3.5);
    }

    #[test]
    fn fig3_connectivity() {
        // Paper Fig. 3: O = {o0..o3}, edges connect o0–o1, o0–o3, o1–o3
        // (the paper draws o1, o2, o4 connected; ids here are 0-based:
        // o1→0, o2→1, o3→2, o4→3).
        let m = ConnectivityMeasure::from_edges(4, &[(0, 1), (0, 3), (1, 3)]);
        // RNN set {o1, o2, o4} = {0, 1, 3} has all three edges: heat 3.0.
        assert_eq!(m.influence(&[0, 1, 3]), 3.0);
        // RNN set {o1, o3, o4} = {0, 2, 3} has only edge o1–o4: heat 1.0.
        assert_eq!(m.influence(&[0, 2, 3]), 1.0);
        // Singletons and empty sets have no edges.
        assert_eq!(m.influence(&[2]), 0.0);
        assert_eq!(m.influence(&[]), 0.0);
    }

    #[test]
    fn capacity_measure_matches_definition() {
        // Two facilities: f0 capacity 1 serving clients {0, 1};
        // f1 capacity 5 serving client {2}. Base total = min(1,2) + min(5,1) = 2.
        let m = CapacityMeasure::new(vec![0, 0, 1], vec![1, 5], 2);
        assert_eq!(m.base_total(), 2.0);
        // Empty RNN set: nothing changes, plus an empty new facility.
        assert_eq!(m.influence(&[]), 2.0);
        // R(p) = {0}: f0 drops to 1 client (still ≥ cap 1, serves 1),
        // new facility serves 1. Total = 1 + 1 + 1 = 3.
        assert_eq!(m.influence(&[0]), 3.0);
        // R(p) = {0, 1, 2}: f0 serves 0, f1 serves 0, p serves min(3,2)=2.
        assert_eq!(m.influence(&[0, 1, 2]), 2.0);
        // Upper bound is admissible: bound({0}, {1,2}) ≥ both extensions.
        let ub = m.upper_bound(&[0], &[1, 2]);
        assert!(ub >= m.influence(&[0]));
        assert!(ub >= m.influence(&[0, 1]));
        assert!(ub >= m.influence(&[0, 1, 2]));
    }

    #[test]
    fn capacity_upper_bound_is_admissible_randomized() {
        // Randomized admissibility check across many configurations.
        let mut state = 99u64;
        let mut next = |m: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for _ in 0..200 {
            let nf = 1 + next(4) as usize;
            let nc = 1 + next(10) as usize;
            let assigned: Vec<u32> = (0..nc).map(|_| next(nf as u64) as u32).collect();
            let capacities: Vec<u32> = (0..nf).map(|_| 1 + next(3) as u32).collect();
            let measure = CapacityMeasure::new(assigned, capacities, 1 + next(4) as u32);
            let all: Vec<u32> = (0..nc as u32).collect();
            let split = next(nc as u64 + 1) as usize;
            let (inside, undecided) = all.split_at(split);
            let ub = measure.upper_bound(inside, undecided);
            // Any subset S with inside ⊆ S ⊆ inside ∪ undecided must be ≤ ub.
            for mask in 0..(1u32 << undecided.len().min(8)) {
                let mut s = inside.to_vec();
                for (b, &u) in undecided.iter().enumerate().take(8) {
                    if mask & (1 << b) != 0 {
                        s.push(u);
                    }
                }
                assert!(measure.influence(&s) <= ub + 1e-9, "ub {ub} violated by subset {s:?}");
            }
        }
    }

    /// Replays random add/remove sequences against a measure, asserting
    /// after each step that the incremental value equals a from-scratch
    /// `influence` evaluation of the same set (bitwise).
    fn check_incremental<M: IncrementalMeasure>(measure: &M, universe: u32, seed: u64) {
        let mut state = measure.new_state();
        let mut members: Vec<u32> = Vec::new();
        let mut rng_state = seed;
        let mut next = |m: u64| {
            rng_state =
                rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng_state >> 33) % m
        };
        for step in 0..500 {
            let id = next(universe as u64) as u32;
            if let Some(pos) = members.iter().position(|&m| m == id) {
                members.swap_remove(pos);
                measure.remove(&mut state, id);
            } else {
                members.push(id);
                measure.add(&mut state, id);
            }
            let expect = measure.influence(&members);
            let got = measure.current(&state);
            assert!(
                got.to_bits() == expect.to_bits(),
                "step {step}: incremental {got} != influence {expect} on {members:?}"
            );
        }
    }

    #[test]
    fn count_incremental_matches_influence() {
        check_incremental(&CountMeasure, 40, 1);
    }

    #[test]
    fn weighted_incremental_matches_influence_on_dyadic_weights() {
        // Dyadic weights sum exactly in f64, so insertion order cannot
        // change the result and bit-identity must hold.
        let weights: Vec<f64> = (0..40).map(|i| (i % 13) as f64 * 0.25).collect();
        check_incremental(&WeightedMeasure::new(weights), 40, 2);
    }

    #[test]
    fn capacity_incremental_matches_influence() {
        let assigned: Vec<u32> = (0..40).map(|i| i % 5).collect();
        let capacities = vec![1, 5, 2, 3, 4];
        check_incremental(&CapacityMeasure::new(assigned, capacities, 3), 40, 3);
    }

    #[test]
    fn connectivity_incremental_matches_influence() {
        let edges: Vec<(u32, u32)> =
            (0..40u32).flat_map(|a| [(a, (a + 1) % 40), (a, (a + 7) % 40)]).collect();
        check_incremental(&ConnectivityMeasure::from_edges(40, &edges), 40, 4);
    }

    #[test]
    fn exact_fallback_tracks_any_measure() {
        // A deliberately order-insensitive but non-decomposable measure:
        // the maximum client id in the set.
        struct MaxId;
        impl InfluenceMeasure for MaxId {
            fn influence(&self, rnn: &[u32]) -> f64 {
                rnn.iter().copied().max().map_or(0.0, |m| m as f64 + 1.0)
            }
        }
        check_incremental(&ExactFallback(MaxId), 25, 5);
    }

    #[test]
    fn cache_keys_distinguish_types_and_parameters() {
        let count = CountMeasure.cache_key();
        let w1 = WeightedMeasure::new(vec![1.0, 2.0]).cache_key();
        let w2 = WeightedMeasure::new(vec![1.0, 2.5]).cache_key();
        let cap1 = CapacityMeasure::new(vec![0, 0], vec![2], 1).cache_key();
        let cap2 = CapacityMeasure::new(vec![0, 0], vec![2], 2).cache_key();
        let conn1 = ConnectivityMeasure::from_edges(3, &[(0, 1)]).cache_key();
        let conn2 = ConnectivityMeasure::from_edges(3, &[(0, 2)]).cache_key();
        let keys = [count, w1, w2, cap1, cap2, conn1, conn2];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "cache keys must separate measures");
            }
        }
        // Stability across instances with identical parameters.
        assert_eq!(w1, WeightedMeasure::new(vec![1.0, 2.0]).cache_key());
        assert_eq!(count, CountMeasure.cache_key());
        // The fallback wrapper computes the same function → same key.
        assert_eq!(ExactFallback(CountMeasure).cache_key(), count);
    }

    /// Exercises `influence_delta` for a measure against from-scratch
    /// recomputation across random membership deltas.
    fn check_delta_hook<M: InfluenceMeasure>(measure: &M, universe: u32, seed: u64, exact: bool) {
        let mut rng_state = seed;
        let mut next = |m: u64| {
            rng_state =
                rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng_state >> 33) % m
        };
        for _ in 0..100 {
            // A random old set, then disjoint added/removed picks.
            let mut old: Vec<u32> = Vec::new();
            for id in 0..universe {
                if next(2) == 0 {
                    old.push(id);
                }
            }
            let mut added = Vec::new();
            let mut removed = Vec::new();
            for id in 0..universe {
                if old.contains(&id) {
                    if next(4) == 0 {
                        removed.push(id);
                    }
                } else if next(4) == 0 {
                    added.push(id);
                }
            }
            let old_influence = measure.influence(&old);
            let got = measure.influence_delta(old_influence, &old, &added, &removed);
            let mut new: Vec<u32> =
                old.iter().copied().filter(|id| !removed.contains(id)).collect();
            new.extend_from_slice(&added);
            let expect = measure.influence(&new);
            if exact {
                assert!(
                    got.to_bits() == expect.to_bits(),
                    "delta {got} != recompute {expect} (old {old:?} +{added:?} -{removed:?})"
                );
            } else {
                assert!((got - expect).abs() < 1e-9, "delta {got} vs recompute {expect}");
            }
        }
    }

    #[test]
    fn delta_hooks_match_recompute() {
        check_delta_hook(&CountMeasure, 30, 1, true);
        // Dyadic weights: the weighted override is bit-exact too.
        let weights: Vec<f64> = (0..30).map(|i| (i % 11) as f64 * 0.25).collect();
        check_delta_hook(&WeightedMeasure::new(weights), 30, 2, true);
        // Default implementations (capacity, connectivity) recompute.
        let assigned: Vec<u32> = (0..30).map(|i| i % 4).collect();
        check_delta_hook(&CapacityMeasure::new(assigned, vec![2, 1, 3, 2], 2), 30, 3, true);
        let edges: Vec<(u32, u32)> = (0..30u32).map(|a| (a, (a + 1) % 30)).collect();
        check_delta_hook(&ConnectivityMeasure::from_edges(30, &edges), 30, 4, true);
    }

    #[test]
    fn state_for_replays_membership() {
        let edges: Vec<(u32, u32)> = (0..20u32).map(|a| (a, (a + 3) % 20)).collect();
        let m = ConnectivityMeasure::from_edges(20, &edges);
        let members = [3u32, 7, 10, 6, 1];
        let mut state = m.state_for(&members);
        assert_eq!(m.current(&state), m.influence(&members));
        // Replay a delta on the rebuilt state.
        m.remove(&mut state, 7);
        m.add(&mut state, 4);
        let now = [3u32, 10, 6, 1, 4];
        assert_eq!(m.current(&state), m.influence(&now));
        // Weighted: rebuilt state matches the incremental contract.
        let w = WeightedMeasure::new((0..20).map(|i| i as f64 * 0.5).collect());
        let state = w.state_for(&members);
        assert_eq!(w.current(&state).to_bits(), w.influence(&members).to_bits());
    }

    #[test]
    fn integral_hints_cover_integer_valued_measures() {
        assert!(CountMeasure.integral_influence());
        assert!(CapacityMeasure::new(vec![0], vec![1], 1).integral_influence());
        assert!(ConnectivityMeasure::from_edges(2, &[(0, 1)]).integral_influence());
        // Arbitrary weights are not integer-valued; the fallback
        // wrapper answers for its inner measure.
        assert!(!WeightedMeasure::new(vec![1.0]).integral_influence());
        assert!(ExactFallback(CountMeasure).integral_influence());
        assert!(!ExactFallback(WeightedMeasure::new(vec![0.5])).integral_influence());
    }

    #[test]
    fn connectivity_ignores_outside_edges() {
        let m = ConnectivityMeasure::from_edges(6, &[(0, 1), (1, 2), (4, 5)]);
        assert_eq!(m.influence(&[0, 1, 2]), 2.0);
        assert_eq!(m.influence(&[0, 2]), 0.0); // 0–2 not an edge
        assert_eq!(m.influence(&[4, 5]), 1.0);
        assert_eq!(m.influence(&[0, 1, 4]), 1.0);
    }
}
