//! Sweep statistics: the quantities the paper's analysis reasons about.

/// Counters reported by every region-coloring algorithm.
///
/// `labels` is the paper's `k` — the number of region labelings, i.e.
/// influence computations. Lemma 3 proves `r ≤ k ≤ 14·r` for CREST, where
/// `r` is the number of regions in the arrangement; the baseline's `k`
/// equals its grid-cell count `m = O(n²)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Number of region labelings (influence computations), the paper's `k`.
    pub labels: u64,
    /// Number of sweep events processed (event batches for L∞/L1).
    pub events: u64,
    /// Largest RNN set observed — the paper's λ.
    pub max_rnn: usize,
    /// Peak number of elements in the line status.
    pub peak_line: usize,
}

impl SweepStats {
    /// Accumulates another stats record (used by the parallel driver).
    pub fn merge(&mut self, other: &SweepStats) {
        self.labels += other.labels;
        self.events += other.events;
        self.max_rnn = self.max_rnn.max(other.max_rnn);
        self.peak_line = self.peak_line.max(other.peak_line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = SweepStats { labels: 10, events: 5, max_rnn: 3, peak_line: 7 };
        let b = SweepStats { labels: 1, events: 2, max_rnn: 9, peak_line: 4 };
        a.merge(&b);
        assert_eq!(a, SweepStats { labels: 11, events: 7, max_rnn: 9, peak_line: 7 });
    }
}
