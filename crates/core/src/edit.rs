//! Dynamic what-if editing: incremental facility updates (an extension
//! beyond the paper).
//!
//! The paper frames RNN heat maps as a tool for *influence exploration*:
//! an analyst asks "what if I add / move / remove a facility here?" and
//! watches influence shift (§I; the taxi-sharing and courier scenarios).
//! Rebuilding the whole arrangement per what-if edit wastes almost all
//! of its work — a single facility edit changes only the NN-circles of
//! the clients whose nearest facility changes, and every such circle is
//! geometrically local to the edit site.
//!
//! [`DynamicArrangement`] keeps the problem instance (clients,
//! facilities, metric, mode, RkNN depth `k`) *together with* its
//! NN-circle arrangement and maintains both under three edit
//! operations. At `k > 1` ([`DynamicArrangement::build_k`]) each
//! client's full `k`-NN candidate set is maintained per edit: an insert
//! admits the new facility into exactly the candidate sets whose `k`-th
//! distance it beats, a removal re-resolves exactly the clients whose
//! `k`-NN set contained the dead slot (everyone else's `k` smallest
//! distances provably survive), and a move fuses both.
//!
//! * [`DynamicArrangement::insert_facility`] — clients closer to the new
//!   facility than to their current NN shrink their circles,
//! * [`DynamicArrangement::remove_facility`] — clients served by the
//!   removed facility re-resolve their NN and grow their circles,
//! * [`DynamicArrangement::move_facility`] — remove + insert fused into
//!   one pass.
//!
//! Each edit returns an [`EditOutcome`]: the [`DirtyRegion`] — the union
//! of bounding boxes of every changed NN-circle (old and new shape), in
//! *input-space* coordinates — plus the per-circle [`CircleChange`]
//! list. Everything outside the dirty region provably kept its RNN set:
//! the RNN set of a point is determined by the circles containing it,
//! and all changed area lies inside the changed circles' bboxes. The
//! tile cache consumes the dirty region to invalidate only intersecting
//! tiles (`rnnhm_heatmap::tiles`), the scanline engine re-renders only
//! the dirty pixel windows, and the facade updates labeled regions via
//! the measure delta hooks
//! ([`crate::measure::InfluenceMeasure::influence_delta`]).
//!
//! ## Bit-identity with a from-scratch rebuild
//!
//! The maintained radii are *bitwise equal* to what a fresh
//! [`crate::arrangement::build_square_arrangement`] /
//! [`crate::arrangement::build_disk_arrangement`] over the current
//! facility set would compute: every radius is the minimum of per-pair
//! distances evaluated by the same [`Metric`] primitives, minimization
//! commutes bitwise with the final `sqrt` (L2), and circle construction
//! uses the exact same formulas. Only the *order* of the arrangement's
//! shape vectors differs after edits — which no raster or query output
//! depends on for order-insensitive measures (see
//! [`crate::measure::IncrementalMeasure`]'s contract). This is
//! property-tested in `tests/edits_match_rebuild.rs`.
//!
//! Derived-artifact caches key on [`DynamicArrangement::fingerprint`],
//! which mixes a *generation counter* bumped on every geometry-changing
//! edit into the build-time fingerprint — `O(1)` per edit instead of an
//! `O(n)` geometry rehash.

use std::sync::Arc;

use rnnhm_geom::{Circle, Metric, Point, Rect};

use crate::arrangement::{DiskArrangement, Mode, SquareArrangement};
use crate::snapshot::ArrangementSnapshot;
use crate::BuildError;

/// Stored rectangles per dirty region before coalescing everything into
/// one bounding box. Edits are local, so the per-client rectangles
/// almost always merge into one or two clusters long before the cap.
const MAX_DIRTY_RECTS: usize = 32;

/// Errors from facility edit operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditError {
    /// The facility id does not name a live facility.
    UnknownFacility,
    /// Removing the facility would leave fewer than `k` live
    /// facilities, so clients' `k`-th NN distances become undefined
    /// (for `k = 1`: cannot remove the last facility).
    TooFewFacilities,
    /// The instance is monochromatic: there is no facility set to edit.
    ImmutableMode,
    /// The edit's target point has a NaN or infinite coordinate, which
    /// would silently corrupt NN maintenance in release builds.
    NonFinitePoint,
}

impl std::fmt::Display for EditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EditError::UnknownFacility => write!(f, "no live facility with this id"),
            EditError::TooFewFacilities => {
                write!(f, "removal would leave fewer live facilities than the instance's k")
            }
            EditError::ImmutableMode => {
                write!(f, "monochromatic instances have no editable facility set")
            }
            EditError::NonFinitePoint => {
                write!(f, "edit target has a non-finite coordinate")
            }
        }
    }
}

impl std::error::Error for EditError {}

/// The union of bounding boxes of every region whose RNN set an edit
/// changed, in *input-space* coordinates.
///
/// Kept as a small list of rectangles (overlapping rectangles are
/// coalesced on insertion, and the list falls back to one overall
/// bounding box past a fixed cap), so a far-apart
/// remove+insert pair — a long-distance [`DynamicArrangement::move_facility`]
/// — stays two tight boxes instead of one huge one. The region is a
/// conservative *superset* of the changed area: everything outside it
/// is guaranteed unchanged.
#[derive(Debug, Clone, Default)]
pub struct DirtyRegion {
    rects: Vec<Rect>,
}

impl DirtyRegion {
    /// An empty region (nothing changed).
    pub fn new() -> DirtyRegion {
        DirtyRegion::default()
    }

    /// Whether nothing was marked dirty.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// The dirty rectangles (input space). Rectangles may overlap; the
    /// region is their union.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Bounding box of the whole region, or `None` when empty.
    pub fn bbox(&self) -> Option<Rect> {
        let mut it = self.rects.iter();
        let first = *it.next()?;
        Some(it.fold(first, |acc, r| acc.union(r)))
    }

    /// Whether `rect` intersects the dirty region (closed semantics,
    /// matching tile extents that share boundaries).
    pub fn intersects(&self, rect: &Rect) -> bool {
        self.rects.iter().any(|r| r.intersects(rect))
    }

    /// Marks `rect` dirty, coalescing every stored rectangle it
    /// overlaps into it (cascading, so the stored rectangles stay
    /// pairwise disjoint and no pixel window is re-rendered twice).
    pub fn push(&mut self, mut rect: Rect) {
        // Each merge can create a new overlap with an earlier rect.
        while let Some(i) = self.rects.iter().position(|r| r.intersects(&rect)) {
            rect = self.rects.swap_remove(i).union(&rect);
        }
        if self.rects.len() == MAX_DIRTY_RECTS {
            let all = self.bbox().expect("cap implies non-empty").union(&rect);
            self.rects.clear();
            self.rects.push(all);
            return;
        }
        self.rects.push(rect);
    }

    /// Absorbs another dirty region.
    pub fn merge(&mut self, other: &DirtyRegion) {
        for &r in other.rects() {
            self.push(r);
        }
    }
}

/// One NN-circle shape, in the arrangement's own (sweep-space)
/// coordinates: squares for L∞, rotated squares for L1, disks for L2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shape {
    /// An axis-aligned square NN-circle (sweep space).
    Square(Rect),
    /// A Euclidean disk NN-circle.
    Disk(Circle),
}

impl Shape {
    /// Whether every interior point of `rect` lies inside the closed
    /// shape (`rect` in the shape's own coordinate space).
    pub fn covers_rect(&self, rect: &Rect) -> bool {
        match self {
            Shape::Square(s) => s.contains_rect(rect),
            Shape::Disk(d) => {
                d.contains_closed(Point::new(rect.x_lo, rect.y_lo))
                    && d.contains_closed(Point::new(rect.x_lo, rect.y_hi))
                    && d.contains_closed(Point::new(rect.x_hi, rect.y_lo))
                    && d.contains_closed(Point::new(rect.x_hi, rect.y_hi))
            }
        }
    }

    /// Whether no interior point of `rect` lies inside the closed shape.
    pub fn misses_rect(&self, rect: &Rect) -> bool {
        match self {
            // Sharing only a boundary still counts as a miss: interior
            // points are strictly beyond the shared edge.
            Shape::Square(s) => {
                !(s.x_lo < rect.x_hi
                    && rect.x_lo < s.x_hi
                    && s.y_lo < rect.y_hi
                    && rect.y_lo < s.y_hi)
            }
            // Conservative for disks: require strict clearance.
            Shape::Disk(d) => rect.dist2_to_point(d.c) > d.r,
        }
    }
}

/// One changed NN-circle: the owning client and its shape before and
/// after the edit (`None` = no circle, i.e. a zero-radius NN distance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircleChange {
    /// The client whose NN-circle changed.
    pub owner: u32,
    /// The shape before the edit.
    pub old: Option<Shape>,
    /// The shape after the edit.
    pub new: Option<Shape>,
}

/// What one edit changed: the dirty region plus the per-circle deltas.
#[derive(Debug, Clone, Default)]
pub struct EditOutcome {
    /// Union of changed-area bounding boxes, input space.
    pub dirty: DirtyRegion,
    /// Every NN-circle the edit changed, with old and new geometry.
    pub changes: Vec<CircleChange>,
}

/// A borrowed view of the arrangement behind a [`DynamicArrangement`].
#[derive(Clone, Copy)]
pub enum ArrangementRef<'a> {
    /// Square NN-circles (L∞ directly, L1 in the rotated sweep frame).
    Square(&'a SquareArrangement),
    /// Disk NN-circles (L2).
    Disk(&'a DiskArrangement),
}

/// A problem instance plus its NN-circle arrangement, maintained
/// incrementally under facility edits — the thin single-user editor
/// over [`ArrangementSnapshot`]. See the module docs.
///
/// Each edit produces a new committed snapshot (chunk-level
/// copy-on-write, so unchanged circles and candidate lists stay
/// physically shared with the previous version) and swaps it in;
/// [`DynamicArrangement::snapshot`] exposes the current snapshot for
/// `O(1)` forking into concurrent exploration sessions
/// (`rnn_heatmap`'s `ExplorationEngine`).
pub struct DynamicArrangement {
    snap: Arc<ArrangementSnapshot>,
}

impl DynamicArrangement {
    /// Builds the instance and its arrangement.
    ///
    /// The initial arrangement is identical (including shape order) to
    /// what [`crate::arrangement::build_square_arrangement`] /
    /// [`crate::arrangement::build_disk_arrangement`] produce for the
    /// same input. Monochromatic instances build fine but reject every
    /// edit with [`EditError::ImmutableMode`].
    pub fn build(
        clients: Vec<Point>,
        facilities: Vec<Point>,
        metric: Metric,
        mode: Mode,
    ) -> Result<DynamicArrangement, BuildError> {
        DynamicArrangement::build_k(clients, facilities, metric, mode, 1)
    }

    /// Builds the RkNN instance for a configurable `k`: every circle's
    /// radius is the client's distance to its `k`-th nearest facility,
    /// and all three edit operations maintain the full `k`-NN candidate
    /// sets (so the rebuild bit-identity invariant holds at every `k`).
    pub fn build_k(
        clients: Vec<Point>,
        facilities: Vec<Point>,
        metric: Metric,
        mode: Mode,
        k: usize,
    ) -> Result<DynamicArrangement, BuildError> {
        Ok(DynamicArrangement {
            snap: Arc::new(ArrangementSnapshot::build_k(clients, facilities, metric, mode, k)?),
        })
    }

    /// Wraps an existing committed snapshot (continuing its lineage).
    pub fn from_snapshot(snap: Arc<ArrangementSnapshot>) -> DynamicArrangement {
        DynamicArrangement { snap }
    }

    /// The current committed snapshot: immutable, cheaply shareable
    /// (`Arc` clone = `O(1)` fork), never mutated by later edits.
    pub fn snapshot(&self) -> &Arc<ArrangementSnapshot> {
        &self.snap
    }

    /// The distance metric of the instance.
    pub fn metric(&self) -> Metric {
        self.snap.metric()
    }

    /// Bichromatic or monochromatic.
    pub fn mode(&self) -> Mode {
        self.snap.mode()
    }

    /// The `k` of the RkNN instance (1 = plain RNN).
    pub fn k(&self) -> usize {
        self.snap.k()
    }

    /// The client set (never edited).
    pub fn clients(&self) -> &[Point] {
        self.snap.clients()
    }

    /// The arrangement view for queries, sweeps and rasterization.
    pub fn as_ref(&self) -> ArrangementRef<'_> {
        self.snap.arrangement()
    }

    /// The square arrangement, when the metric is L∞ or L1.
    pub fn square(&self) -> Option<&SquareArrangement> {
        self.snap.square()
    }

    /// The disk arrangement, when the metric is L2.
    pub fn disk(&self) -> Option<&DiskArrangement> {
        self.snap.disk()
    }

    /// Live facilities as `(id, location)`, in id order. The ids are
    /// stable across edits and valid for
    /// [`DynamicArrangement::remove_facility`] /
    /// [`DynamicArrangement::move_facility`].
    pub fn facilities(&self) -> impl Iterator<Item = (u32, Point)> + '_ {
        self.snap.facilities()
    }

    /// Live facility locations in id order (the list a from-scratch
    /// rebuild of the current instance would start from).
    pub fn facility_points(&self) -> Vec<Point> {
        self.snap.facility_points()
    }

    /// The location of live facility `id`.
    pub fn facility(&self, id: u32) -> Option<Point> {
        self.snap.facility(id)
    }

    /// Number of live facilities.
    pub fn n_facilities(&self) -> usize {
        self.snap.n_facilities()
    }

    /// How many geometry-changing edits this instance has absorbed.
    pub fn generation(&self) -> u64 {
        self.snap.generation()
    }

    /// A stable cache key for derived artifacts (rendered tiles, …).
    /// Geometric no-op edits keep the key; geometry-changing edits get
    /// a process-unique fresh key, so two edit branches forked from
    /// the same snapshot can never collide.
    pub fn fingerprint(&self) -> u64 {
        self.snap.fingerprint()
    }

    /// Adds a facility at `p`. Returns the new facility's id and what
    /// changed: every client strictly closer to `p` than to its current
    /// `k`-th NN admits `p` into its `k`-NN set and (usually) shrinks
    /// its circle.
    pub fn insert_facility(&mut self, p: Point) -> Result<(u32, EditOutcome), EditError> {
        let (next, id, out) = self.snap.insert_facility(p)?;
        self.snap = Arc::new(next);
        Ok((id, out))
    }

    /// Removes facility `id`. Exactly the clients whose `k`-NN set
    /// contained `id` re-resolve their `k` nearest among the remaining
    /// facilities and grow their circles; everyone else's `k` smallest
    /// distances are provably unchanged.
    pub fn remove_facility(&mut self, id: u32) -> Result<EditOutcome, EditError> {
        let (next, out) = self.snap.remove_facility(id)?;
        self.snap = Arc::new(next);
        Ok(out)
    }

    /// Moves facility `id` to `to` — a remove + insert fused into one
    /// pass: clients with `id` in their `k`-NN set re-resolve it (the
    /// set may keep `id`), every other client checks whether `id`'s new
    /// location undercuts its current `k`-th NN distance.
    pub fn move_facility(&mut self, id: u32, to: Point) -> Result<EditOutcome, EditError> {
        let (next, out) = self.snap.move_facility(id, to)?;
        self.snap = Arc::new(next);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::{build_disk_arrangement_k, build_square_arrangement_k};

    fn pseudo_points(n: usize, seed: u64, span: f64) -> Vec<Point> {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n).map(|_| Point::new(next() * span, next() * span)).collect()
    }

    /// Asserts the dynamic arrangement matches a from-scratch rebuild
    /// over its current facility set: same per-client radii (bitwise)
    /// and the same (owner → shape) mapping as sets.
    fn assert_matches_rebuild(dy: &DynamicArrangement) {
        let facs = dy.facility_points();
        match dy.metric() {
            Metric::L2 => {
                let fresh =
                    build_disk_arrangement_k(dy.clients(), &facs, Mode::Bichromatic, dy.k())
                        .unwrap();
                let a = dy.disk().unwrap();
                assert_eq!(a.len(), fresh.len());
                assert_eq!(a.dropped, fresh.dropped);
                let mut ours: Vec<(u32, u64, u64, u64)> = a
                    .owners
                    .iter()
                    .zip(&a.disks)
                    .map(|(&o, d)| (o, d.c.x.to_bits(), d.c.y.to_bits(), d.r.to_bits()))
                    .collect();
                let mut theirs: Vec<(u32, u64, u64, u64)> = fresh
                    .owners
                    .iter()
                    .zip(&fresh.disks)
                    .map(|(&o, d)| (o, d.c.x.to_bits(), d.c.y.to_bits(), d.r.to_bits()))
                    .collect();
                ours.sort_unstable();
                theirs.sort_unstable();
                assert_eq!(ours, theirs, "disk set diverged from rebuild");
            }
            m => {
                let fresh =
                    build_square_arrangement_k(dy.clients(), &facs, m, Mode::Bichromatic, dy.k())
                        .unwrap();
                let a = dy.square().unwrap();
                assert_eq!(a.len(), fresh.len());
                assert_eq!(a.dropped, fresh.dropped);
                assert_eq!(a.space, fresh.space);
                let key = |o: u32, s: &Rect| {
                    (o, s.x_lo.to_bits(), s.x_hi.to_bits(), s.y_lo.to_bits(), s.y_hi.to_bits())
                };
                let mut ours: Vec<_> =
                    a.owners.iter().zip(&a.squares).map(|(&o, s)| key(o, s)).collect();
                let mut theirs: Vec<_> =
                    fresh.owners.iter().zip(&fresh.squares).map(|(&o, s)| key(o, s)).collect();
                ours.sort_unstable();
                theirs.sort_unstable();
                assert_eq!(ours, theirs, "square set diverged from rebuild ({m:?})");
            }
        }
    }

    #[test]
    fn build_matches_static_builders_exactly() {
        let clients = pseudo_points(40, 7, 10.0);
        let facs = pseudo_points(5, 9, 10.0);
        for metric in Metric::ALL {
            let dy =
                DynamicArrangement::build(clients.clone(), facs.clone(), metric, Mode::Bichromatic)
                    .unwrap();
            match metric {
                Metric::L2 => {
                    let fresh =
                        build_disk_arrangement_k(&clients, &facs, Mode::Bichromatic, 1).unwrap();
                    assert_eq!(dy.disk().unwrap().fingerprint(), fresh.fingerprint());
                }
                m => {
                    let fresh =
                        build_square_arrangement_k(&clients, &facs, m, Mode::Bichromatic, 1)
                            .unwrap();
                    assert_eq!(dy.square().unwrap().fingerprint(), fresh.fingerprint());
                }
            }
        }
    }

    #[test]
    fn edit_script_matches_rebuild_all_metrics() {
        let clients = pseudo_points(60, 3, 10.0);
        let facs = pseudo_points(4, 11, 10.0);
        for metric in Metric::ALL {
            let mut dy =
                DynamicArrangement::build(clients.clone(), facs.clone(), metric, Mode::Bichromatic)
                    .unwrap();
            let (id_a, _) = dy.insert_facility(Point::new(2.5, 2.5)).unwrap();
            assert_matches_rebuild(&dy);
            dy.move_facility(id_a, Point::new(7.5, 7.5)).unwrap();
            assert_matches_rebuild(&dy);
            dy.remove_facility(0).unwrap();
            assert_matches_rebuild(&dy);
            dy.remove_facility(id_a).unwrap();
            assert_matches_rebuild(&dy);
            let (_, out) = dy.insert_facility(Point::new(0.1, 9.9)).unwrap();
            // The outcome's change list and dirty region agree.
            for ch in &out.changes {
                assert!(ch.old != ch.new, "listed change must change geometry");
            }
            assert_eq!(out.dirty.is_empty(), out.changes.is_empty());
            assert_matches_rebuild(&dy);
        }
    }

    #[test]
    fn insert_on_client_drops_its_circle_and_remove_restores_it() {
        let clients = vec![Point::new(1.0, 1.0), Point::new(8.0, 8.0)];
        let facs = vec![Point::new(4.0, 4.0)];
        let mut dy =
            DynamicArrangement::build(clients, facs, Metric::Linf, Mode::Bichromatic).unwrap();
        assert_eq!(dy.square().unwrap().len(), 2);
        let (id, out) = dy.insert_facility(Point::new(1.0, 1.0)).unwrap();
        assert_eq!(dy.square().unwrap().len(), 1, "coincident client drops its circle");
        assert_eq!(dy.square().unwrap().dropped, 1);
        assert!(out.changes.iter().any(|c| c.owner == 0 && c.new.is_none()));
        assert_matches_rebuild(&dy);
        dy.remove_facility(id).unwrap();
        assert_eq!(dy.square().unwrap().len(), 2, "removal restores the dropped circle");
        assert_eq!(dy.square().unwrap().dropped, 0);
        assert_matches_rebuild(&dy);
    }

    #[test]
    fn dirty_region_bounds_every_change() {
        let clients = pseudo_points(50, 21, 10.0);
        let facs = pseudo_points(6, 22, 10.0);
        let mut dy =
            DynamicArrangement::build(clients, facs, Metric::L2, Mode::Bichromatic).unwrap();
        let (_, out) = dy.insert_facility(Point::new(5.0, 5.0)).unwrap();
        assert!(!out.dirty.is_empty(), "a central insert must steal some clients");
        for ch in &out.changes {
            for shape in ch.old.iter().chain(ch.new.iter()) {
                let bbox = match shape {
                    Shape::Square(s) => *s,
                    Shape::Disk(d) => d.bbox(),
                };
                // L2/L∞ shapes live in input space; every changed shape
                // must be covered by the dirty region.
                assert!(
                    out.dirty.rects().iter().any(|r| r.contains_rect(&bbox)),
                    "changed circle of client {} escapes the dirty region",
                    ch.owner
                );
            }
        }
    }

    #[test]
    fn noop_edits_keep_generation_and_report_empty_dirty() {
        let clients = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let facs = vec![Point::new(1.0, 0.0), Point::new(9.0, 0.0)];
        let mut dy =
            DynamicArrangement::build(clients, facs, Metric::Linf, Mode::Bichromatic).unwrap();
        let g0 = dy.generation();
        let fp0 = dy.fingerprint();
        // A facility far from everything changes no NN distance.
        let (far, out) = dy.insert_facility(Point::new(100.0, 100.0)).unwrap();
        assert!(out.dirty.is_empty());
        assert!(out.changes.is_empty());
        assert_eq!(dy.generation(), g0);
        assert_eq!(dy.fingerprint(), fp0, "no geometry change, no key change");
        // Moving it around far away is equally invisible.
        let out = dy.move_facility(far, Point::new(200.0, 200.0)).unwrap();
        assert!(out.dirty.is_empty());
        // Removing it: its (zero) clients re-resolve — still nothing.
        let out = dy.remove_facility(far).unwrap();
        assert!(out.dirty.is_empty());
        assert_eq!(dy.fingerprint(), fp0);
        // A real edit bumps the fingerprint.
        dy.insert_facility(Point::new(0.5, 0.0)).unwrap();
        assert_ne!(dy.fingerprint(), fp0);
        assert_eq!(dy.generation(), g0 + 1);
    }

    #[test]
    fn edit_errors() {
        let clients = vec![Point::new(0.0, 0.0), Point::new(5.0, 5.0)];
        let facs = vec![Point::new(1.0, 1.0)];
        let mut dy = DynamicArrangement::build(
            clients.clone(),
            facs.clone(),
            Metric::Linf,
            Mode::Bichromatic,
        )
        .unwrap();
        assert_eq!(dy.remove_facility(0).unwrap_err(), EditError::TooFewFacilities);
        assert_eq!(dy.remove_facility(7).unwrap_err(), EditError::UnknownFacility);
        assert_eq!(
            dy.move_facility(9, Point::new(0.0, 0.0)).unwrap_err(),
            EditError::UnknownFacility
        );
        let (id, _) = dy.insert_facility(Point::new(4.0, 4.0)).unwrap();
        dy.remove_facility(id).unwrap();
        assert_eq!(dy.remove_facility(id).unwrap_err(), EditError::UnknownFacility);

        let mut mono =
            DynamicArrangement::build(clients, vec![], Metric::Linf, Mode::Monochromatic).unwrap();
        assert_eq!(
            mono.insert_facility(Point::new(1.0, 1.0)).unwrap_err(),
            EditError::ImmutableMode
        );
        assert_eq!(mono.remove_facility(0).unwrap_err(), EditError::ImmutableMode);
        assert_eq!(
            mono.move_facility(0, Point::new(1.0, 1.0)).unwrap_err(),
            EditError::ImmutableMode
        );
    }

    #[test]
    fn edit_scripts_match_rebuild_at_higher_k() {
        let clients = pseudo_points(50, 13, 10.0);
        let facs = pseudo_points(6, 29, 10.0);
        for k in [2usize, 3, 5] {
            for metric in Metric::ALL {
                let mut dy = DynamicArrangement::build_k(
                    clients.clone(),
                    facs.clone(),
                    metric,
                    Mode::Bichromatic,
                    k,
                )
                .unwrap();
                assert_eq!(dy.k(), k);
                assert_matches_rebuild(&dy);
                let (id_a, _) = dy.insert_facility(Point::new(5.0, 5.0)).unwrap();
                assert_matches_rebuild(&dy);
                dy.move_facility(id_a, Point::new(1.0, 9.0)).unwrap();
                assert_matches_rebuild(&dy);
                dy.remove_facility(1).unwrap();
                assert_matches_rebuild(&dy);
                dy.move_facility(0, Point::new(9.5, 0.5)).unwrap();
                assert_matches_rebuild(&dy);
                dy.remove_facility(id_a).unwrap();
                assert_matches_rebuild(&dy);
            }
        }
    }

    #[test]
    fn removal_guards_on_k_not_one() {
        let clients = pseudo_points(12, 3, 4.0);
        let facs = pseudo_points(3, 5, 4.0);
        let mut dy =
            DynamicArrangement::build_k(clients, facs, Metric::L2, Mode::Bichromatic, 3).unwrap();
        // 3 facilities at k = 3: any removal would orphan the 3rd NN.
        assert_eq!(dy.remove_facility(0).unwrap_err(), EditError::TooFewFacilities);
        let (id, _) = dy.insert_facility(Point::new(2.0, 2.0)).unwrap();
        // 4 alive: one removal fine, a second blocked again.
        dy.remove_facility(id).unwrap();
        assert_matches_rebuild(&dy);
        assert_eq!(dy.remove_facility(0).unwrap_err(), EditError::TooFewFacilities);
    }

    #[test]
    fn non_finite_edit_targets_are_rejected() {
        let clients = pseudo_points(8, 7, 4.0);
        let facs = pseudo_points(2, 9, 4.0);
        let mut dy =
            DynamicArrangement::build(clients, facs, Metric::Linf, Mode::Bichromatic).unwrap();
        let bad = Point { x: f64::NAN, y: 0.0 };
        assert_eq!(dy.insert_facility(bad).unwrap_err(), EditError::NonFinitePoint);
        assert_eq!(dy.move_facility(0, bad).unwrap_err(), EditError::NonFinitePoint);
        let inf = Point { x: 0.0, y: f64::INFINITY };
        assert_eq!(dy.insert_facility(inf).unwrap_err(), EditError::NonFinitePoint);
        // The rejected edits left nothing behind.
        assert_eq!(dy.n_facilities(), 2);
        assert_eq!(dy.generation(), 0);
        assert_matches_rebuild(&dy);
    }

    #[test]
    fn facility_ids_stay_stable_across_edits() {
        let clients = pseudo_points(10, 5, 4.0);
        let facs = vec![Point::new(1.0, 1.0), Point::new(3.0, 3.0)];
        let mut dy =
            DynamicArrangement::build(clients, facs, Metric::L1, Mode::Bichromatic).unwrap();
        let (id2, _) = dy.insert_facility(Point::new(2.0, 2.0)).unwrap();
        assert_eq!(id2, 2);
        dy.remove_facility(0).unwrap();
        assert_eq!(dy.n_facilities(), 2);
        let ids: Vec<u32> = dy.facilities().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![1, 2], "dead slots keep later ids stable");
        assert_eq!(dy.facility(0), None);
        assert_eq!(dy.facility(1), Some(Point::new(3.0, 3.0)));
        dy.move_facility(id2, Point::new(0.5, 0.5)).unwrap();
        assert_eq!(dy.facility(id2), Some(Point::new(0.5, 0.5)));
    }

    #[test]
    fn dirty_region_coalesces_and_caps() {
        let mut d = DirtyRegion::new();
        assert!(d.is_empty());
        d.push(Rect::new(0.0, 1.0, 0.0, 1.0));
        d.push(Rect::new(0.5, 2.0, 0.5, 2.0)); // overlaps → coalesce
        assert_eq!(d.rects().len(), 1);
        assert_eq!(d.rects()[0], Rect::new(0.0, 2.0, 0.0, 2.0));
        d.push(Rect::new(50.0, 51.0, 50.0, 51.0)); // disjoint → second rect
        assert_eq!(d.rects().len(), 2);
        assert!(d.intersects(&Rect::new(1.5, 1.6, 0.0, 0.5)));
        assert!(d.intersects(&Rect::new(50.5, 99.0, 50.5, 99.0)));
        assert!(!d.intersects(&Rect::new(10.0, 20.0, 10.0, 20.0)));
        // Push far past the cap: the region folds into one bbox but
        // still covers everything ever pushed.
        for i in 0..100 {
            let x = i as f64 * 10.0;
            d.push(Rect::new(x, x + 1.0, -500.0, -499.0));
        }
        assert!(d.rects().len() <= MAX_DIRTY_RECTS);
        assert!(d.intersects(&Rect::new(990.2, 990.8, -499.5, -499.4)));
        assert!(d.bbox().unwrap().contains_rect(&Rect::new(0.0, 2.0, 0.0, 2.0)));
    }

    #[test]
    fn shape_rect_relations() {
        let sq = Shape::Square(Rect::new(0.0, 4.0, 0.0, 4.0));
        assert!(sq.covers_rect(&Rect::new(1.0, 3.0, 1.0, 3.0)));
        assert!(sq.covers_rect(&Rect::new(0.0, 4.0, 0.0, 4.0)), "closed cover");
        assert!(sq.misses_rect(&Rect::new(4.0, 5.0, 0.0, 4.0)), "shared edge is a miss");
        assert!(sq.misses_rect(&Rect::new(9.0, 10.0, 9.0, 10.0)));
        assert!(!sq.covers_rect(&Rect::new(3.0, 5.0, 0.0, 1.0)));
        assert!(!sq.misses_rect(&Rect::new(3.0, 5.0, 0.0, 1.0)));
        let dk = Shape::Disk(Circle::new(Point::new(0.0, 0.0), 2.0));
        assert!(dk.covers_rect(&Rect::new(-1.0, 1.0, -1.0, 1.0)));
        assert!(dk.misses_rect(&Rect::new(3.0, 4.0, 3.0, 4.0)));
        let straddle = Rect::new(1.0, 3.0, -0.5, 0.5);
        assert!(!dk.covers_rect(&straddle));
        assert!(!dk.misses_rect(&straddle));
    }
}
