//! Brute-force reference implementations for testing.
//!
//! The oracle answers RNN queries the slow, obviously-correct way: a point
//! `q` has client `o` in its RNN set iff `q` lies inside `o`'s NN-circle
//! (paper §III-A: `R(q) = {o | d(o, q) ≤ d(o, f) ∀f ∈ F}` — the NN-circle
//! is precisely that locus). Every sweep algorithm is validated against it.

use std::collections::BTreeMap;

use rnnhm_geom::{Metric, Point};

use crate::arrangement::{DiskArrangement, SquareArrangement};
use crate::sink::LabeledRegion;

/// Brute-force RNN set of a sweep-space point against a square
/// arrangement: owners of all squares strictly containing `q`.
///
/// Open containment matches region interiors; callers probe region
/// interior points (subregion centers), never boundaries.
pub fn rnn_at_square(arr: &SquareArrangement, q: Point) -> Vec<u32> {
    let mut out: Vec<u32> = arr
        .squares
        .iter()
        .zip(&arr.owners)
        .filter(|(s, _)| s.contains_open(q))
        .map(|(_, &o)| o)
        .collect();
    out.sort_unstable();
    out
}

/// Brute-force RNN set of a point against a disk arrangement.
pub fn rnn_at_disk(arr: &DiskArrangement, q: Point) -> Vec<u32> {
    let mut out: Vec<u32> = arr
        .disks
        .iter()
        .zip(&arr.owners)
        .filter(|(c, _)| c.contains_open(q))
        .map(|(_, &o)| o)
        .collect();
    out.sort_unstable();
    out
}

/// Brute-force bichromatic RNN set of `q` from raw points: every client
/// whose distance to `q` is strictly less than to its nearest facility.
///
/// This bypasses NN-circles entirely — an independent path used to verify
/// the NN-circle reduction itself.
pub fn rnn_at_points(
    clients: &[Point],
    facilities: &[Point],
    metric: Metric,
    q: Point,
) -> Vec<u32> {
    let mut out = Vec::new();
    for (i, o) in clients.iter().enumerate() {
        let d_q = metric.dist(o, &q);
        let d_nn = facilities.iter().map(|f| metric.dist(o, f)).fold(f64::INFINITY, f64::min);
        if d_q < d_nn {
            out.push(i as u32);
        }
    }
    out
}

/// Canonical signature of an RNN set: sorted member ids.
pub fn signature(rnn: &[u32]) -> Vec<u32> {
    let mut s = rnn.to_vec();
    s.sort_unstable();
    s
}

/// Aggregates labeled regions into total area per RNN-set signature.
///
/// Used to compare full tilings (BA cells vs CREST-A strips): two correct
/// exact tilings of the same arrangement must give identical area per
/// signature, up to floating-point tolerance. Empty sets are skipped —
/// the algorithms bound the empty exterior differently (BA grids span the
/// global bounding box; strips span only the live line status).
///
/// Returns a `BTreeMap` so iteration order (and any diff printed from
/// it) is the sorted signature order, independent of hasher seeds.
pub fn area_by_signature(regions: &[LabeledRegion]) -> BTreeMap<Vec<u32>, f64> {
    let mut map: BTreeMap<Vec<u32>, f64> = BTreeMap::new();
    for r in regions {
        if r.rnn.is_empty() {
            continue;
        }
        *map.entry(signature(&r.rnn)).or_insert(0.0) += r.rect.area();
    }
    map
}

/// Asserts two signature→area maps agree up to `tol` (panics with a
/// readable diff otherwise). Test helper.
pub fn assert_area_maps_equal(a: &BTreeMap<Vec<u32>, f64>, b: &BTreeMap<Vec<u32>, f64>, tol: f64) {
    for (sig, &area_a) in a {
        let area_b = b.get(sig).copied().unwrap_or(0.0);
        assert!((area_a - area_b).abs() <= tol, "signature {sig:?}: area {area_a} vs {area_b}");
    }
    for (sig, &area_b) in b {
        if !a.contains_key(sig) {
            assert!(area_b.abs() <= tol, "signature {sig:?} only in second map, area {area_b}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::{build_square_arrangement, Mode};
    use rnnhm_geom::Rect;

    #[test]
    fn rnn_at_points_matches_circle_containment() {
        let clients = vec![Point::new(0.0, 0.0), Point::new(4.0, 0.0), Point::new(2.0, 3.0)];
        let facilities = vec![Point::new(1.0, 0.0), Point::new(5.0, 5.0)];
        for metric in [Metric::Linf, Metric::L1] {
            let arr =
                build_square_arrangement(&clients, &facilities, metric, Mode::Bichromatic).unwrap();
            let probes = [
                Point::new(0.5, 0.25),
                Point::new(3.0, 0.5),
                Point::new(2.0, 2.0),
                Point::new(-3.0, -3.0),
            ];
            for q in probes {
                let direct = rnn_at_points(&clients, &facilities, metric, q);
                let via_circles = rnn_at_square(&arr, arr.space.to_sweep(q));
                assert_eq!(direct, via_circles, "metric {metric:?} probe {q:?}");
            }
        }
    }

    #[test]
    fn signature_sorts() {
        assert_eq!(signature(&[3, 1, 2]), vec![1, 2, 3]);
        assert_eq!(signature(&[]), Vec::<u32>::new());
    }

    #[test]
    fn area_aggregation() {
        let regions = vec![
            LabeledRegion { rect: Rect::new(0.0, 1.0, 0.0, 1.0), rnn: vec![2, 1], influence: 2.0 },
            LabeledRegion { rect: Rect::new(1.0, 2.0, 0.0, 2.0), rnn: vec![1, 2], influence: 2.0 },
            LabeledRegion { rect: Rect::new(0.0, 5.0, 0.0, 5.0), rnn: vec![], influence: 0.0 },
        ];
        let map = area_by_signature(&regions);
        assert_eq!(map.len(), 1, "empty signature skipped");
        assert_eq!(map[&vec![1, 2]], 3.0);
    }

    #[test]
    #[should_panic(expected = "signature")]
    fn area_maps_mismatch_detected() {
        let mut a = BTreeMap::new();
        a.insert(vec![1], 2.0);
        let mut b = BTreeMap::new();
        b.insert(vec![1], 5.0);
        assert_area_maps_equal(&a, &b, 1e-9);
    }
}
