//! The baseline algorithm BA (paper §IV).
//!
//! Extending every square side across the whole arrangement forms a grid
//! whose cells each lie inside exactly one region (Fig. 7). BA labels the
//! RC problem by running a point-enclosure query on the centroid of every
//! grid cell: `O(n log² n + m log n + m λ)` with `m = O(n²)` cells.
//!
//! Where the paper indexes the NN-circles with the S-tree \[25\], we use
//! the STR R-tree from `rnnhm-index` — the paper notes "other spatial
//! indexes such as the R-tree may be used". The baseline's two structural
//! drawbacks, which CREST removes, are unchanged: it runs `m` enclosure
//! queries and labels each region once per covering cell.

use rnnhm_geom::{Point, Rect};
use rnnhm_index::{EnclosureIndex, RTree};

use crate::arrangement::SquareArrangement;
use crate::measure::InfluenceMeasure;
use crate::sink::RegionSink;
use crate::stats::SweepStats;

/// Sorted, deduplicated coordinates of all vertical (`x`) or horizontal
/// (`y`) square sides.
fn grid_lines(arr: &SquareArrangement) -> (Vec<f64>, Vec<f64>) {
    let mut xs = Vec::with_capacity(arr.squares.len() * 2);
    let mut ys = Vec::with_capacity(arr.squares.len() * 2);
    for s in &arr.squares {
        xs.push(s.x_lo);
        xs.push(s.x_hi);
        ys.push(s.y_lo);
        ys.push(s.y_hi);
    }
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    ys.sort_by(f64::total_cmp);
    ys.dedup();
    (xs, ys)
}

/// Runs the baseline algorithm over a square arrangement with the
/// default point-enclosure backend (the STR R-tree).
///
/// Every grid cell is labeled through `sink`; `stats.labels` equals the
/// paper's `m` (number of grid cells).
pub fn baseline_sweep<M: InfluenceMeasure, S: RegionSink>(
    arr: &SquareArrangement,
    measure: &M,
    sink: &mut S,
) -> SweepStats {
    baseline_sweep_with::<RTree, M, S>(arr, measure, sink)
}

/// [`baseline_sweep`] with a caller-chosen point-enclosure backend
/// (R-tree or the interval tree closer to the paper's S-tree \[25\]).
pub fn baseline_sweep_with<I: EnclosureIndex, M: InfluenceMeasure, S: RegionSink>(
    arr: &SquareArrangement,
    measure: &M,
    sink: &mut S,
) -> SweepStats {
    let mut stats = SweepStats::default();
    if arr.is_empty() {
        return stats;
    }
    let tree = I::build_index(&arr.squares);
    let (xs, ys) = grid_lines(arr);

    let mut hits: Vec<u32> = Vec::new();
    let mut members: Vec<u32> = Vec::new();
    for xi in 0..xs.len().saturating_sub(1) {
        let (x_lo, x_hi) = (xs[xi], xs[xi + 1]);
        let cx = (x_lo + x_hi) * 0.5;
        for yi in 0..ys.len().saturating_sub(1) {
            let (y_lo, y_hi) = (ys[yi], ys[yi + 1]);
            let cy = (y_lo + y_hi) * 0.5;
            // Point-enclosure query on the cell centroid (the centroid is
            // interior to the cell, hence interior to its region, so
            // closed vs open enclosure cannot disagree).
            hits.clear();
            tree.stab_point(Point::new(cx, cy), &mut hits);
            members.clear();
            members.extend(hits.iter().map(|&c| arr.owners[c as usize]));
            let influence = measure.influence(&members);
            stats.labels += 1;
            stats.max_rnn = stats.max_rnn.max(members.len());
            sink.label(Rect::new(x_lo, x_hi, y_lo, y_hi), &members, influence);
        }
    }
    stats
}

/// The number of grid cells BA would label (the paper's `m`), without
/// running the queries. Used by benchmarks to predict feasibility.
pub fn baseline_cell_count(arr: &SquareArrangement) -> u64 {
    let (xs, ys) = grid_lines(arr);
    (xs.len().saturating_sub(1) as u64) * (ys.len().saturating_sub(1) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::CoordSpace;
    use crate::measure::CountMeasure;
    use crate::sink::CollectSink;

    fn arr_from_squares(squares: Vec<Rect>) -> SquareArrangement {
        let owners = (0..squares.len() as u32).collect();
        let n = squares.len();
        SquareArrangement {
            squares,
            owners,
            space: CoordSpace::Identity,
            n_clients: n,
            dropped: 0,
            k: 1,
        }
    }

    #[test]
    fn single_square_single_cell() {
        let arr = arr_from_squares(vec![Rect::new(0.0, 1.0, 0.0, 1.0)]);
        let mut sink = CollectSink::default();
        let stats = baseline_sweep(&arr, &CountMeasure, &mut sink);
        assert_eq!(stats.labels, 1);
        assert_eq!(sink.regions[0].rnn, vec![0]);
        assert_eq!(baseline_cell_count(&arr), 1);
    }

    #[test]
    fn two_overlapping_squares_grid() {
        // Sides at x ∈ {0,1,2,3}, y ∈ {0,1,2,3} → 3×3 = 9 cells.
        let arr =
            arr_from_squares(vec![Rect::new(0.0, 2.0, 0.0, 2.0), Rect::new(1.0, 3.0, 1.0, 3.0)]);
        let mut sink = CollectSink::default();
        let stats = baseline_sweep(&arr, &CountMeasure, &mut sink);
        assert_eq!(stats.labels, 9);
        assert_eq!(baseline_cell_count(&arr), 9);
        // Middle cell [1,2]² is the overlap.
        let mid = sink
            .regions
            .iter()
            .find(|r| r.rect == Rect::new(1.0, 2.0, 1.0, 2.0))
            .expect("middle cell");
        let mut rnn = mid.rnn.clone();
        rnn.sort_unstable();
        assert_eq!(rnn, vec![0, 1]);
        // Corner cells carry a single owner or none.
        let corner = sink
            .regions
            .iter()
            .find(|r| r.rect == Rect::new(0.0, 1.0, 0.0, 1.0))
            .expect("corner cell");
        assert_eq!(corner.rnn, vec![0]);
        let far_corner = sink
            .regions
            .iter()
            .find(|r| r.rect == Rect::new(0.0, 1.0, 2.0, 3.0))
            .expect("far corner cell");
        assert!(far_corner.rnn.is_empty());
    }

    #[test]
    fn cell_count_grows_quadratically_in_worst_case() {
        // Fig. 8's diagonal construction: 2n distinct side coordinates per
        // axis → (2n−1)² cells.
        let n = 10usize;
        let half = n as f64 / 2.0;
        let squares: Vec<Rect> =
            (0..n).map(|i| Rect::centered(Point::new(i as f64, i as f64), half)).collect();
        let arr = arr_from_squares(squares);
        let m = baseline_cell_count(&arr);
        assert_eq!(m, ((2 * n - 1) * (2 * n - 1)) as u64);
    }

    #[test]
    fn empty_arrangement() {
        let arr = arr_from_squares(vec![]);
        let mut sink = CollectSink::default();
        let stats = baseline_sweep(&arr, &CountMeasure, &mut sink);
        assert_eq!(stats.labels, 0);
    }
}
