//! Exact region counting for square arrangements (paper §IV, §VI-B).
//!
//! The paper's analysis revolves around `r`, the number of regions in the
//! arrangement, proved by the Euler characteristic to lie between `Θ(n)`
//! and `Θ(n²)`. For an arrangement of axis-aligned square *boundaries* in
//! generic position the formula collapses pleasantly: with `X` pairwise
//! boundary crossings and `c` connected components of the boundary union,
//!
//! ```text
//! v = 4n + X          (corners + crossings)
//! e = 4n + 2X         (each crossing splits one edge on each boundary)
//! r = e − v + 1 + c = X + c + 1    (including the outer face)
//! ```
//!
//! Sanity anchors from the paper: `n` disjoint squares give `X = 0`,
//! `c = n`, so `r = n + 1`; the Fig 8 diagonal construction gives
//! `X = n² − n`, `c = 1`, so `r = n² − n + 2`. Both match §IV.
//!
//! Generic position assumed (no shared side segments, no corner-on-side
//! touches); random float workloads satisfy it. Used by tests to verify
//! Lemma 3's `k = Θ(r)` on arbitrary arrangements.

use rnnhm_geom::Rect;
use rnnhm_index::RTree;

use crate::arrangement::SquareArrangement;

/// Union-find over square indices.
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu { parent: (0..n as u32).collect() }
    }
    fn find(&mut self, x: u32) -> u32 {
        let p = self.parent[x as usize];
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent[x as usize] = root;
        root
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

/// Number of points where the boundaries of squares `a` and `b` cross,
/// assuming generic position (0, 2, 4, 6 or 8 for squares).
fn boundary_crossings(a: &Rect, b: &Rect) -> usize {
    let mut count = 0;
    // Vertical sides of `a` against horizontal sides of `b`, and vice
    // versa. A vertical segment (x, ylo..yhi) crosses a horizontal
    // segment (xlo..xhi, y) iff strictly interleaved.
    let crosses = |vx: f64, vy0: f64, vy1: f64, hx0: f64, hx1: f64, hy: f64| {
        hx0 < vx && vx < hx1 && vy0 < hy && hy < vy1
    };
    for vx in [a.x_lo, a.x_hi] {
        for hy in [b.y_lo, b.y_hi] {
            if crosses(vx, a.y_lo, a.y_hi, b.x_lo, b.x_hi, hy) {
                count += 1;
            }
        }
    }
    for vx in [b.x_lo, b.x_hi] {
        for hy in [a.y_lo, a.y_hi] {
            if crosses(vx, b.y_lo, b.y_hi, a.x_lo, a.x_hi, hy) {
                count += 1;
            }
        }
    }
    count
}

/// Exact region count `r` of the arrangement (including the outer face),
/// assuming generic position. `O(n log n + pairs)` via an R-tree pair
/// filter.
pub fn region_count(arr: &SquareArrangement) -> u64 {
    let n = arr.squares.len();
    if n == 0 {
        return 1; // just the plane
    }
    let rtree = RTree::build(&arr.squares);
    let mut dsu = Dsu::new(n);
    let mut crossings = 0u64;
    let mut hits: Vec<u32> = Vec::new();
    for (i, s) in arr.squares.iter().enumerate() {
        hits.clear();
        rtree.intersecting(s, &mut hits);
        for &j in &hits {
            if (j as usize) <= i {
                continue;
            }
            let x = boundary_crossings(s, &arr.squares[j as usize]);
            if x > 0 {
                crossings += x as u64;
                dsu.union(i as u32, j);
            }
        }
    }
    let mut roots: Vec<u32> = (0..n as u32).map(|i| dsu.find(i)).collect();
    roots.sort_unstable();
    roots.dedup();
    crossings + roots.len() as u64 + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::CoordSpace;
    use crate::crest::{crest_a_sweep, crest_sweep};
    use crate::measure::CountMeasure;
    use crate::sink::NullSink;
    use rnnhm_geom::Point;

    fn arr_from_squares(squares: Vec<Rect>) -> SquareArrangement {
        let owners = (0..squares.len() as u32).collect();
        let n = squares.len();
        SquareArrangement {
            squares,
            owners,
            space: CoordSpace::Identity,
            n_clients: n,
            dropped: 0,
            k: 1,
        }
    }

    #[test]
    fn disjoint_squares_give_n_plus_one() {
        let squares: Vec<Rect> =
            (0..7).map(|i| Rect::centered(Point::new(i as f64 * 10.0, 0.0), 1.0)).collect();
        let arr = arr_from_squares(squares);
        assert_eq!(region_count(&arr), 8);
    }

    #[test]
    fn nested_squares_give_n_plus_one() {
        let squares: Vec<Rect> =
            (1..=5).map(|i| Rect::centered(Point::new(0.0, 0.0), i as f64)).collect();
        let arr = arr_from_squares(squares);
        assert_eq!(region_count(&arr), 6);
    }

    #[test]
    fn fig8_diagonal_matches_formula() {
        // Paper §IV: r = n² − n + 2 for the diagonal construction.
        for n in [2usize, 5, 10, 16] {
            let half = n as f64 / 2.0;
            let squares: Vec<Rect> =
                (0..n).map(|i| Rect::centered(Point::new(i as f64, i as f64), half)).collect();
            let arr = arr_from_squares(squares);
            assert_eq!(region_count(&arr), (n * n - n + 2) as u64, "n = {n}");
        }
    }

    #[test]
    fn two_crossing_squares() {
        // Classic plus-sign overlap: 2 squares, 8 crossings… a standard
        // cross overlap of two squares crosses at 2 points per side pair:
        // [0,2]² and [1,3]² cross at exactly 2 points → r = 2 + 1 + 1 = 4
        // (outside, A∖B, B∖A, A∩B).
        let arr =
            arr_from_squares(vec![Rect::new(0.0, 2.0, 0.0, 2.0), Rect::new(1.0, 3.0, 1.0, 3.0)]);
        assert_eq!(region_count(&arr), 4);
    }

    #[test]
    fn lemma3_bounds_hold_on_random_arrangements() {
        // r − 1 ≤ k ≤ 14 r (CREST never labels the outer face; Lemma 3
        // bounds the rest).
        let mut state = 0xfeedu64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for round in 0..10 {
            let n = 10 + round * 15;
            let squares: Vec<Rect> = (0..n)
                .map(|_| Rect::centered(Point::new(next() * 10.0, next() * 10.0), 0.2 + next()))
                .collect();
            let arr = arr_from_squares(squares);
            let r = region_count(&arr);
            let stats = crest_sweep(&arr, &CountMeasure, &mut NullSink);
            assert!(
                stats.labels + 1 >= r,
                "k = {} < r − 1 = {} (round {round})",
                stats.labels,
                r - 1
            );
            assert!(
                stats.labels <= 14 * r,
                "k = {} > 14r = {} (round {round})",
                stats.labels,
                14 * r
            );
            // CREST-A labels at least as many times but is also bounded
            // below by the bounded-face count.
            let full = crest_a_sweep(&arr, &CountMeasure, &mut NullSink);
            assert!(full.labels + 1 >= r);
        }
    }

    #[test]
    fn empty_arrangement() {
        let arr = arr_from_squares(vec![]);
        assert_eq!(region_count(&arr), 1);
    }
}
