//! The filter-and-refine "Pruning" comparator (paper §VII-C, from \[22\]).
//!
//! The algorithm the paper benchmarks CREST-L2 against in Figs 18–19. It
//! finds the maximum-influence region of a disk arrangement by
//! *enumerating* inside/outside sign assignments over each circle's
//! overlap neighborhood and *checking* whether each enumerated region
//! exists: "when C(o1) intersects C(o2) and C(o3), it enumerates the
//! regions ô1ô2ô3, ô1ô2ō3, ô1ō2ô3, ô1ō2ō3, and then checks whether such
//! regions really exist". Branch-and-bound with the measure's
//! [`InfluenceMeasure::upper_bound`] prunes assignments that cannot beat
//! the best found so far — but the enumeration is exponential in the
//! overlap degree, which is exactly the behaviour Figs 18–19 show (the
//! paper: "suffers from an exponential running time in the worst case").
//!
//! The *refine* step (does an enumerated region exist?) is implemented
//! with witness bitmasks: per anchor circle, a pool of candidate witness
//! points (nudged pairwise boundary intersections, centers, nudged axis
//! extremes) is classified once against every neighbor disk, producing a
//! containment bitmask per witness; a leaf assignment exists iff its
//! bitmask appears in the pool's hash table. Every non-empty face of a
//! circle arrangement owns such a witness unless it is thinner than the
//! nudge radius (`rnnhm_geom::eps::NUDGE`) or the pool cap was hit.
//!
//! Because the enumeration is exponential, runs are bounded by a global
//! work budget ([`PruningConfig::max_nodes`]) — the practical analog of
//! the paper's 24-hour cut-off. A truncated run reports
//! [`PruningStats::truncated`] and its result is only a lower bound.

use std::collections::BTreeMap;

use rnnhm_geom::eps::NUDGE;
use rnnhm_geom::{Circle, Point, Rect};
use rnnhm_index::RTree;

use crate::arrangement::DiskArrangement;
use crate::measure::InfluenceMeasure;
use crate::sink::LabeledRegion;

/// Tuning knobs for the pruning comparator.
#[derive(Debug, Clone, Copy)]
pub struct PruningConfig {
    /// Global cap on work units (branch-and-bound nodes plus witness
    /// classification work) across all anchor circles. When exhausted,
    /// `PruningStats::truncated` is set and the result is a lower bound.
    pub max_nodes: u64,
    /// Cap on the candidate witness pool per anchor circle (dense
    /// neighborhoods yield `O(k²)` intersection points; the pool keeps
    /// the first this-many).
    pub max_witnesses: usize,
}

impl Default for PruningConfig {
    fn default() -> Self {
        PruningConfig { max_nodes: 20_000_000, max_witnesses: 100_000 }
    }
}

/// Work counters for the pruning comparator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruningStats {
    /// Branch-and-bound nodes expanded.
    pub nodes: u64,
    /// Leaf assignments whose existence was checked.
    pub leaves: u64,
    /// Witness points classified across all anchors.
    pub witness_tests: u64,
    /// Whether the work budget was exhausted.
    pub truncated: bool,
}

/// Containment bitmask over an anchor's neighbor list.
type Mask = Vec<u64>;

struct Search<'a, M: InfluenceMeasure> {
    measure: &'a M,
    stats: PruningStats,
    budget: u64,
    best: Option<LabeledRegion>,
    best_influence: f64,
    /// Owner ids of `inside` disks, maintained as a stack with the DFS.
    inside_owners: Vec<u32>,
}

impl<M: InfluenceMeasure> Search<'_, M> {
    /// DFS over inside/outside assignments of `nbr_owners[idx..]`.
    ///
    /// `cand` are the indices into `faces` of the existing regions still
    /// consistent with the assignment so far — the *refine* feasibility
    /// prune: a partial assignment no existing face matches is abandoned
    /// immediately. Combined with the influence upper bound this is the
    /// paper's "filter and refine paradigm … with pruning techniques".
    fn dfs(&mut self, nbr_owners: &[u32], idx: usize, faces: &[(Mask, Point)], cand: &[u32]) {
        if cand.is_empty() {
            return; // no enumerated region exists under this assignment
        }
        if self.budget == 0 {
            self.stats.truncated = true;
            return;
        }
        self.budget -= 1;
        self.stats.nodes += 1;

        // Optimistic bound: everything undecided joins the region.
        if self.best.is_some()
            && self.measure.upper_bound(&self.inside_owners, &nbr_owners[idx..])
                <= self.best_influence
        {
            return; // prune
        }

        if idx == nbr_owners.len() {
            self.stats.leaves += 1;
            debug_assert_eq!(cand.len(), 1, "masks are unique per face");
            let w = faces[cand[0] as usize].1;
            let influence = self.measure.influence(&self.inside_owners);
            if self.best.is_none() || influence > self.best_influence {
                self.best_influence = influence;
                self.best = Some(LabeledRegion {
                    rect: Rect::new(w.x, w.x, w.y, w.y).inflate(NUDGE / 2.0),
                    rnn: self.inside_owners.clone(),
                    influence,
                });
            }
            return;
        }

        // Split the surviving faces on this neighbor's bit; branch inside
        // first (larger sets first helps the bound for monotone measures).
        let bit = |m: &Mask| m[idx / 64] >> (idx % 64) & 1 == 1;
        let inside_cand: Vec<u32> =
            cand.iter().copied().filter(|&f| bit(&faces[f as usize].0)).collect();
        let outside_cand: Vec<u32> =
            cand.iter().copied().filter(|&f| !bit(&faces[f as usize].0)).collect();
        self.inside_owners.push(nbr_owners[idx]);
        self.dfs(nbr_owners, idx + 1, faces, &inside_cand);
        self.inside_owners.pop();
        self.dfs(nbr_owners, idx + 1, faces, &outside_cand);
    }
}

/// Candidate witness points for regions anchored at disk `ci`.
///
/// For every circle in `{ci} ∪ nbrs`, the intersection points with all
/// other circles of the neighborhood are sorted by angle; the midpoint of
/// every angular gap is emitted twice, nudged radially inward and outward
/// by [`NUDGE`]. Every face of the neighborhood arrangement whose
/// boundary contains an arc therefore owns a witness (the two faces
/// adjacent to the arc), as long as the face is thicker than the nudge.
/// Circle centers cover faces bounded purely by containment. The pool is
/// capped at `max` points.
fn witness_candidates(disks: &[Circle], ci: u32, nbrs: &[u32], max: usize) -> Vec<Point> {
    let mut ids: Vec<u32> = Vec::with_capacity(nbrs.len() + 1);
    ids.push(ci);
    ids.extend_from_slice(nbrs);
    let mut out = Vec::new();
    let mut angles: Vec<f64> = Vec::new();
    for &a in &ids {
        let ca = &disks[a as usize];
        out.push(ca.c);
        angles.clear();
        for &b in &ids {
            if b == a {
                continue;
            }
            for p in &ca.intersect(&disks[b as usize]) {
                angles.push((p.y - ca.c.y).atan2(p.x - ca.c.x));
            }
        }
        let emit = |theta: f64, out: &mut Vec<Point>| {
            let (sin, cos) = theta.sin_cos();
            for rr in [ca.r - NUDGE, ca.r + NUDGE] {
                out.push(Point::new(ca.c.x + rr * cos, ca.c.y + rr * sin));
            }
        };
        if angles.is_empty() {
            // No intersections: the whole boundary is one arc.
            for k in 0..4 {
                emit(k as f64 * std::f64::consts::FRAC_PI_2, &mut out);
            }
        } else {
            angles.sort_by(f64::total_cmp);
            for i in 0..angles.len() {
                let a0 = angles[i];
                let a1 = if i + 1 < angles.len() {
                    angles[i + 1]
                } else {
                    angles[0] + std::f64::consts::TAU
                };
                emit((a0 + a1) * 0.5, &mut out);
            }
        }
        if out.len() >= max {
            break;
        }
    }
    out
}

/// Classifies witnesses against the anchor and its neighbors: the
/// distinct containment masks of witnesses inside the anchor, each with
/// one representative point.
fn face_table(
    disks: &[Circle],
    ci: u32,
    nbrs: &[u32],
    witnesses: &[Point],
    stats: &mut PruningStats,
    budget: &mut u64,
) -> Vec<(Mask, Point)> {
    let words = nbrs.len().div_ceil(64).max(1);
    // BTreeMap, not HashMap: the face list feeds refinement order, and
    // masks are Ord, so sorted iteration keeps the search deterministic.
    let mut faces: BTreeMap<Mask, Point> = BTreeMap::new();
    let anchor = &disks[ci as usize];
    for &w in witnesses {
        // Classification work is charged against the global budget.
        let charge = 1 + nbrs.len() as u64 / 16;
        if *budget < charge {
            *budget = 0;
            stats.truncated = true;
            break;
        }
        *budget -= charge;
        stats.witness_tests += 1;
        if !anchor.contains_open(w) {
            continue;
        }
        let mut mask = vec![0u64; words];
        let mut on_boundary = false;
        for (i, &d) in nbrs.iter().enumerate() {
            let disk = &disks[d as usize];
            if disk.contains_open(w) {
                mask[i / 64] |= 1 << (i % 64);
            } else if disk.contains_closed(w) {
                // Within epsilon of a boundary: ambiguous, skip.
                on_boundary = true;
                break;
            }
        }
        if !on_boundary {
            faces.entry(mask).or_insert(w);
        }
    }
    faces.into_iter().collect()
}

/// Finds the maximum-influence region of a disk arrangement by the
/// filter-and-refine pruning algorithm of \[22\].
///
/// Returns the best region found (a point-sized rectangle at the witness)
/// and work counters. The result is the exact maximum when no truncation
/// occurred and no face is thinner than the nudge radius.
pub fn pruning_max_region<M: InfluenceMeasure>(
    arr: &DiskArrangement,
    measure: &M,
    config: PruningConfig,
) -> (Option<LabeledRegion>, PruningStats) {
    let disks = &arr.disks;
    let bboxes: Vec<Rect> = disks.iter().map(Circle::bbox).collect();
    let rtree = RTree::build(&bboxes);

    let mut search = Search {
        measure,
        stats: PruningStats::default(),
        budget: config.max_nodes,
        best: None,
        best_influence: f64::NEG_INFINITY,
        inside_owners: Vec::new(),
    };

    let mut hits: Vec<u32> = Vec::new();
    for ci in 0..disks.len() as u32 {
        if search.budget == 0 {
            search.stats.truncated = true;
            break;
        }
        hits.clear();
        rtree.intersecting(&bboxes[ci as usize], &mut hits);
        let nbrs: Vec<u32> = hits
            .iter()
            .copied()
            .filter(|&j| j != ci && disks[ci as usize].overlaps(&disks[j as usize]))
            .collect();
        let nbr_owners: Vec<u32> = nbrs.iter().map(|&d| arr.owners[d as usize]).collect();
        let witnesses = witness_candidates(disks, ci, &nbrs, config.max_witnesses);
        let faces = face_table(disks, ci, &nbrs, &witnesses, &mut search.stats, &mut search.budget);
        if faces.is_empty() {
            continue;
        }
        search.inside_owners.clear();
        search.inside_owners.push(arr.owners[ci as usize]);
        let all: Vec<u32> = (0..faces.len() as u32).collect();
        search.dfs(&nbr_owners, 0, &faces, &all);
    }
    (search.best, search.stats)
}

/// Convenience wrapper: the maximum-influence region found by CREST-L2
/// with a [`crate::sink::MaxSink`] — the paper's side of the Fig 18–19
/// comparison.
pub fn crest_l2_max_region<M: InfluenceMeasure>(
    arr: &DiskArrangement,
    measure: &M,
) -> (Option<LabeledRegion>, crate::stats::SweepStats) {
    let mut sink = crate::sink::MaxSink::default();
    let stats = crate::crest_l2::crest_l2_sweep(arr, measure, &mut sink);
    (sink.best, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{CapacityMeasure, CountMeasure};
    use crate::oracle::signature;

    /// Regression pin for face-table determinism: `face_table` used to
    /// collect faces into a `HashMap`, and every `HashMap` instance
    /// seeds its own hasher — so two calls *in the same process* could
    /// explore faces in different orders and (under work-budget
    /// truncation or influence ties) return different witnesses. The
    /// `BTreeMap` face table must make repeated runs bitwise identical.
    #[test]
    fn repeated_runs_are_bitwise_identical() {
        let disks: Vec<Circle> = (0..14)
            .map(|i| {
                let a = i as f64 * 0.45;
                Circle::new(Point::new(a.cos(), a.sin()), 1.3)
            })
            .collect();
        let arr = arr_from_disks(disks);
        // A tight budget forces truncation, the regime where face
        // order leaks into the answer.
        let config = PruningConfig { max_nodes: 400, max_witnesses: 64 };
        let (a, sa) = pruning_max_region(&arr, &CountMeasure, config);
        let (b, sb) = pruning_max_region(&arr, &CountMeasure, config);
        let a = a.expect("region found");
        let b = b.expect("region found");
        assert_eq!(a.rect.x_lo.to_bits(), b.rect.x_lo.to_bits());
        assert_eq!(a.rect.y_lo.to_bits(), b.rect.y_lo.to_bits());
        assert_eq!(a.influence.to_bits(), b.influence.to_bits());
        assert_eq!(signature(&a.rnn), signature(&b.rnn));
        assert_eq!(sa, sb);
    }

    fn arr_from_disks(disks: Vec<Circle>) -> DiskArrangement {
        let owners = (0..disks.len() as u32).collect();
        let n = disks.len();
        DiskArrangement { disks, owners, n_clients: n, dropped: 0, k: 1 }
    }

    #[test]
    fn single_disk_max() {
        let arr = arr_from_disks(vec![Circle::new(Point::new(0.0, 0.0), 1.0)]);
        let (best, stats) = pruning_max_region(&arr, &CountMeasure, PruningConfig::default());
        let best = best.unwrap();
        assert_eq!(best.influence, 1.0);
        assert_eq!(best.rnn, vec![0]);
        assert!(!stats.truncated);
    }

    #[test]
    fn triple_overlap_finds_core() {
        let arr = arr_from_disks(vec![
            Circle::new(Point::new(0.0, 0.0), 1.2),
            Circle::new(Point::new(1.0, 0.1), 1.1),
            Circle::new(Point::new(0.4, 0.9), 1.0),
        ]);
        let (best, _) = pruning_max_region(&arr, &CountMeasure, PruningConfig::default());
        let best = best.unwrap();
        assert_eq!(best.influence, 3.0);
        assert_eq!(signature(&best.rnn), vec![0, 1, 2]);
    }

    #[test]
    fn agrees_with_crest_l2_on_count_measure() {
        let mut state = 0x5151u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for _ in 0..8 {
            let disks: Vec<Circle> = (0..8)
                .map(|_| Circle::new(Point::new(next() * 3.0, next() * 3.0), 0.3 + next()))
                .collect();
            let arr = arr_from_disks(disks);
            let (p_best, _) = pruning_max_region(&arr, &CountMeasure, PruningConfig::default());
            let (c_best, _) = crest_l2_max_region(&arr, &CountMeasure);
            let p = p_best.expect("pruning found a region");
            let c = c_best.expect("crest found a region");
            assert_eq!(p.influence, c.influence, "max influence must agree");
        }
    }

    #[test]
    fn agrees_with_crest_l2_on_capacity_measure() {
        // Capacity-constrained measure, as used in the paper's Figs 18–19.
        let mut state = 77u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for _ in 0..5 {
            let n = 7usize;
            let disks: Vec<Circle> = (0..n)
                .map(|_| Circle::new(Point::new(next() * 2.5, next() * 2.5), 0.4 + next()))
                .collect();
            let arr = arr_from_disks(disks);
            let assigned: Vec<u32> = (0..n).map(|_| (next() * 2.0) as u32).collect();
            let measure = CapacityMeasure::new(assigned, vec![2, 2], 3);
            let (p_best, _) = pruning_max_region(&arr, &measure, PruningConfig::default());
            let (c_best, _) = crest_l2_max_region(&arr, &measure);
            let p = p_best.expect("pruning found a region");
            let c = c_best.expect("crest found a region");
            assert!(
                (p.influence - c.influence).abs() < 1e-9,
                "pruning {} vs crest {}",
                p.influence,
                c.influence
            );
        }
    }

    #[test]
    fn truncation_reported_and_lower_bounds() {
        // A dense clique of disks with a tiny budget must truncate, and a
        // truncated result can only be a lower bound of the optimum.
        let disks: Vec<Circle> =
            (0..14).map(|i| Circle::new(Point::new(i as f64 * 0.01, 0.0), 5.0)).collect();
        let arr = arr_from_disks(disks);
        let (best, stats) = pruning_max_region(
            &arr,
            &CountMeasure,
            PruningConfig { max_nodes: 10, max_witnesses: 1000 },
        );
        assert!(stats.truncated);
        let (crest, _) = crest_l2_max_region(&arr, &CountMeasure);
        if let (Some(b), Some(c)) = (best, crest) {
            assert!(b.influence <= c.influence + 1e-9);
        }
    }

    #[test]
    fn witness_pool_covers_lens_faces() {
        // Two crossing circles: the pool must contain witnesses for all
        // three faces of the lens configuration.
        let disks =
            vec![Circle::new(Point::new(0.0, 0.0), 1.0), Circle::new(Point::new(1.0, 0.0), 1.0)];
        let cands = witness_candidates(&disks, 0, &[1], 10_000);
        let in_both =
            cands.iter().any(|w| disks[0].contains_open(*w) && disks[1].contains_open(*w));
        let only_a =
            cands.iter().any(|w| disks[0].contains_open(*w) && !disks[1].contains_closed(*w));
        assert!(in_both, "no witness in the lens");
        assert!(only_a, "no witness in the left lune");
    }

    #[test]
    fn face_table_distinguishes_faces() {
        let disks =
            vec![Circle::new(Point::new(0.0, 0.0), 1.0), Circle::new(Point::new(1.0, 0.0), 1.0)];
        let witnesses = witness_candidates(&disks, 0, &[1], 10_000);
        let mut stats = PruningStats::default();
        let mut budget = u64::MAX;
        let faces = face_table(&disks, 0, &[1], &witnesses, &mut stats, &mut budget);
        // Anchored at disk 0: faces {0 only} (mask 0) and {0,1} (mask 1).
        assert_eq!(faces.len(), 2);
        assert!(faces.iter().any(|(m, _)| m == &vec![0u64]));
        assert!(faces.iter().any(|(m, _)| m == &vec![1u64]));
    }

    #[test]
    fn witness_pool_respects_cap() {
        let disks: Vec<Circle> =
            (0..40).map(|i| Circle::new(Point::new(i as f64 * 0.05, 0.0), 2.0)).collect();
        let nbrs: Vec<u32> = (1..40).collect();
        // The cap is enforced between circles; one circle contributes at
        // most `1 + 2 * (2 * |nbrs|)` points past it.
        let cands = witness_candidates(&disks, 0, &nbrs, 500);
        assert!(
            cands.len() <= 500 + 1 + 4 * nbrs.len(),
            "pool of {} exceeds cap + one circle batch",
            cands.len()
        );
    }
}
