//! Region sinks — consumers of labeled regions.
//!
//! The paper's "labeling a region" (§III-B) covers both outputting the RNN
//! set and computing/outputting the influence. Algorithms here stream
//! `(rectangle, RNN set, influence)` triples into a [`RegionSink`], which
//! makes the interactive post-processing operations of §I (top-k regions,
//! thresholding) ordinary sink implementations.

use rnnhm_geom::Rect;

/// One labeled region.
///
/// `rect` is the *first subregion* of the region in sweep coordinates:
/// an axis-aligned rectangle whose interior lies entirely inside the
/// region (for L2, a rectangle sampled at the strip midline whose center
/// lies inside the region). A region (arrangement face) may extend beyond
/// `rect`; exact geometry reconstruction uses the rasterizer instead.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledRegion {
    /// Representative rectangle (sweep space).
    pub rect: Rect,
    /// The RNN set (unordered client ids).
    pub rnn: Vec<u32>,
    /// The influence value of the RNN set.
    pub influence: f64,
}

/// A consumer of labeled regions.
pub trait RegionSink {
    /// Called once per region labeling with the representative rectangle,
    /// the RNN set (unordered) and its influence.
    fn label(&mut self, rect: Rect, rnn: &[u32], influence: f64);
}

/// Discards all labels (used when only sweep statistics are wanted, e.g.
/// in benchmarks — mirroring the paper's CPU-time measurements, which do
/// not include rendering).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl RegionSink for NullSink {
    #[inline]
    fn label(&mut self, _rect: Rect, _rnn: &[u32], _influence: f64) {}
}

/// Collects every labeled region.
#[derive(Debug, Default, Clone)]
pub struct CollectSink {
    /// All labels, in emission order.
    pub regions: Vec<LabeledRegion>,
}

impl RegionSink for CollectSink {
    fn label(&mut self, rect: Rect, rnn: &[u32], influence: f64) {
        self.regions.push(LabeledRegion { rect, rnn: rnn.to_vec(), influence });
    }
}

/// Keeps the single most influential region (ties: first seen wins).
#[derive(Debug, Default, Clone)]
pub struct MaxSink {
    /// The best region seen so far.
    pub best: Option<LabeledRegion>,
}

impl RegionSink for MaxSink {
    fn label(&mut self, rect: Rect, rnn: &[u32], influence: f64) {
        let better = match &self.best {
            Some(b) => influence > b.influence,
            None => true,
        };
        if better {
            self.best = Some(LabeledRegion { rect, rnn: rnn.to_vec(), influence });
        }
    }
}

/// Keeps the `k` most influential regions (the paper's "regions having the
/// top-k heat values" post-processing).
///
/// Note that CREST may label one region several times (bounded by Lemma 3);
/// duplicates with identical RNN sets are collapsed by keeping the sink's
/// entries unique on the RNN-set signature.
#[derive(Debug, Clone)]
pub struct TopKSink {
    k: usize,
    /// Regions sorted descending by influence, at most `k` of them.
    entries: Vec<LabeledRegion>,
}

impl TopKSink {
    /// Creates a sink retaining the top `k` regions.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        TopKSink { k, entries: Vec::with_capacity(k + 1) }
    }

    /// The retained regions, most influential first.
    pub fn into_top(self) -> Vec<LabeledRegion> {
        self.entries
    }

    /// Borrows the retained regions, most influential first.
    pub fn top(&self) -> &[LabeledRegion] {
        &self.entries
    }

    fn signature_eq(a: &[u32], b: &[u32]) -> bool {
        if a.len() != b.len() {
            return false;
        }
        let mut sa = a.to_vec();
        let mut sb = b.to_vec();
        sa.sort_unstable();
        sb.sort_unstable();
        sa == sb
    }
}

impl RegionSink for TopKSink {
    fn label(&mut self, rect: Rect, rnn: &[u32], influence: f64) {
        if self.entries.len() == self.k
            && influence <= self.entries.last().expect("k > 0").influence
        {
            return;
        }
        // Collapse relabelings of the same region (same RNN set).
        if let Some(existing) = self.entries.iter().position(|e| Self::signature_eq(&e.rnn, rnn)) {
            if self.entries[existing].influence >= influence {
                return;
            }
            self.entries.remove(existing);
        }
        let pos = self.entries.partition_point(|e| e.influence >= influence);
        self.entries.insert(pos, LabeledRegion { rect, rnn: rnn.to_vec(), influence });
        self.entries.truncate(self.k);
    }
}

/// Keeps regions with influence at or above a threshold (the paper's
/// "selectively showing regions with heat values above a threshold").
#[derive(Debug, Clone)]
pub struct ThresholdSink {
    /// Minimum influence to retain.
    pub min_influence: f64,
    /// Retained regions in emission order.
    pub regions: Vec<LabeledRegion>,
}

impl ThresholdSink {
    /// Creates a sink keeping regions with `influence ≥ min_influence`.
    pub fn new(min_influence: f64) -> Self {
        ThresholdSink { min_influence, regions: Vec::new() }
    }
}

impl RegionSink for ThresholdSink {
    fn label(&mut self, rect: Rect, rnn: &[u32], influence: f64) {
        if influence >= self.min_influence {
            self.regions.push(LabeledRegion { rect, rnn: rnn.to_vec(), influence });
        }
    }
}

/// Accumulates `Σ influence · area` over labeled rectangles — the
/// integral of the influence field.
///
/// **Exactness requires an exact tiling**: feed this sink from the
/// CREST-A full-strip sweep ([`crate::crest::crest_a_sweep`]) or the
/// slab-parallel driver with `full_strips = true`, where the emitted
/// rectangles partition the arrangement's bbox and — crucially — strip
/// rectangles are clipped to their slab, so a circle tangent to a slab
/// boundary is never integrated twice (property-tested in
/// `crate::parallel`). Under the plain CREST sweep the labels are
/// *representative* first-subregions, not a tiling, and sums are
/// meaningless; the same holds across slab merges, where a straddling
/// region is labeled once per slab it touches.
#[derive(Debug, Default, Clone, Copy)]
pub struct SumSink {
    /// `Σ influence · rect.area()` over every label consumed.
    pub weighted_sum: f64,
    /// `Σ rect.area()` over every label consumed.
    pub area: f64,
    /// Number of labels consumed.
    pub labels: u64,
}

impl RegionSink for SumSink {
    fn label(&mut self, rect: Rect, _rnn: &[u32], influence: f64) {
        let a = rect.area();
        self.weighted_sum += influence * a;
        self.area += a;
        self.labels += 1;
    }
}

/// Consumes every label by materializing the RNN set into a reusable
/// buffer, accumulating a checksum.
///
/// This is the benchmark sink: the paper's cost model charges `O(λ)` per
/// region labeling because labeling *outputs the region's RNN set*
/// (§III-B: "we do not distinguish the process of outputting the RNN set
/// of a region and the process of computing and outputting the influence
/// value"). A sink that ignores the set would understate the cost of
/// algorithms that label many regions.
#[derive(Debug, Default, Clone)]
pub struct MaterializeSink {
    buf: Vec<u32>,
    /// Number of labels consumed.
    pub labels: u64,
    /// Order-insensitive checksum over all output (prevents the work
    /// from being optimized away and lets runs be compared).
    pub checksum: u64,
}

impl RegionSink for MaterializeSink {
    fn label(&mut self, _rect: Rect, rnn: &[u32], influence: f64) {
        self.buf.clear();
        self.buf.extend_from_slice(rnn);
        self.labels += 1;
        let mut h = influence.to_bits() ^ self.buf.len() as u64;
        for &id in &self.buf {
            h = h.wrapping_add((id as u64).wrapping_mul(0x9e3779b97f4a7c15));
        }
        self.checksum = self.checksum.wrapping_add(h);
    }
}

/// Forwards every label to two sinks (e.g. collect + top-k in one sweep).
pub struct TeeSink<'a, A: RegionSink, B: RegionSink> {
    /// First target.
    pub a: &'a mut A,
    /// Second target.
    pub b: &'a mut B,
}

impl<A: RegionSink, B: RegionSink> RegionSink for TeeSink<'_, A, B> {
    fn label(&mut self, rect: Rect, rnn: &[u32], influence: f64) {
        self.a.label(rect, rnn, influence);
        self.b.label(rect, rnn, influence);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x: f64) -> Rect {
        Rect::new(x, x + 1.0, 0.0, 1.0)
    }

    #[test]
    fn collect_preserves_order() {
        let mut s = CollectSink::default();
        s.label(r(0.0), &[1], 1.0);
        s.label(r(1.0), &[2, 3], 2.0);
        assert_eq!(s.regions.len(), 2);
        assert_eq!(s.regions[1].rnn, vec![2, 3]);
    }

    #[test]
    fn max_sink_keeps_best() {
        let mut s = MaxSink::default();
        s.label(r(0.0), &[1], 1.0);
        s.label(r(1.0), &[2, 3, 4], 3.0);
        s.label(r(2.0), &[5], 2.0);
        let best = s.best.unwrap();
        assert_eq!(best.influence, 3.0);
        assert_eq!(best.rnn, vec![2, 3, 4]);
    }

    #[test]
    fn topk_orders_and_truncates() {
        let mut s = TopKSink::new(2);
        s.label(r(0.0), &[1], 1.0);
        s.label(r(1.0), &[2], 5.0);
        s.label(r(2.0), &[3], 3.0);
        s.label(r(3.0), &[4], 0.5);
        let top = s.into_top();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].influence, 5.0);
        assert_eq!(top[1].influence, 3.0);
    }

    #[test]
    fn topk_deduplicates_same_rnn_set() {
        let mut s = TopKSink::new(3);
        // The same region labeled twice (multi-labeling, Lemma 3) with
        // members in different orders.
        s.label(r(0.0), &[4, 2], 2.0);
        s.label(r(0.5), &[2, 4], 2.0);
        s.label(r(1.0), &[7], 1.0);
        let top = s.into_top();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].influence, 2.0);
        assert_eq!(top[1].influence, 1.0);
    }

    #[test]
    fn threshold_filters() {
        let mut s = ThresholdSink::new(2.0);
        s.label(r(0.0), &[1], 1.9);
        s.label(r(1.0), &[2], 2.0);
        s.label(r(2.0), &[3], 7.0);
        assert_eq!(s.regions.len(), 2);
        assert!(s.regions.iter().all(|x| x.influence >= 2.0));
    }

    #[test]
    fn tee_forwards_to_both() {
        let mut collect = CollectSink::default();
        let mut max = MaxSink::default();
        {
            let mut tee = TeeSink { a: &mut collect, b: &mut max };
            tee.label(r(0.0), &[1], 1.0);
            tee.label(r(1.0), &[2], 9.0);
        }
        assert_eq!(collect.regions.len(), 2);
        assert_eq!(max.best.unwrap().influence, 9.0);
    }
}
