//! Windowed region coloring — recompute the heat map inside a viewport.
//!
//! The paper motivates frequent recomputation ("in some applications such
//! as taxi-sharing, the heat map may change as clients move around and
//! need to be recomputed frequently", §I) and interactive zooming ("if
//! the decision maker is interested in any specific area, she can zoom in
//! to see more details", §VIII-A). Both only need the regions inside a
//! viewport.
//!
//! Correctness of restriction: the RNN set of a point depends only on the
//! NN-circles containing it, and a circle containing a window point
//! intersects the window. So it suffices to keep the circles intersecting
//! the window, clip their x-extents to the window (circles protruding
//! left of it enter the line status in one batch at the window's left
//! edge), and drop labels that fall outside.

use rnnhm_geom::Rect;

use crate::arrangement::SquareArrangement;
use crate::crest::crest_sweep;
use crate::measure::InfluenceMeasure;
use crate::sink::RegionSink;
use crate::stats::SweepStats;

/// Restricts an arrangement to the NN-circles intersecting `window`,
/// clipping x-extents to the window's x-range (y-extents are kept: a
/// square's horizontal sides define region boundaries above and below
/// the window-visible part of the region and must not move).
pub fn clip_arrangement(arr: &SquareArrangement, window: &Rect) -> SquareArrangement {
    let mut squares = Vec::new();
    let mut owners = Vec::new();
    for (s, &o) in arr.squares.iter().zip(&arr.owners) {
        if !s.intersects(window) {
            continue;
        }
        let lo = s.x_lo.max(window.x_lo);
        let hi = s.x_hi.min(window.x_hi);
        if lo < hi {
            squares.push(Rect::new(lo, hi, s.y_lo, s.y_hi));
            owners.push(o);
        }
    }
    SquareArrangement {
        squares,
        owners,
        space: arr.space,
        n_clients: arr.n_clients,
        dropped: arr.dropped,
        k: arr.k,
    }
}

/// A sink adapter that clips label rectangles to a window and drops
/// labels entirely outside it.
pub struct WindowSink<'a, S: RegionSink> {
    window: Rect,
    inner: &'a mut S,
    /// Labels dropped for lying outside the window.
    pub dropped: u64,
}

impl<'a, S: RegionSink> WindowSink<'a, S> {
    /// Wraps `inner`, forwarding only labels that intersect `window`.
    pub fn new(window: Rect, inner: &'a mut S) -> Self {
        WindowSink { window, inner, dropped: 0 }
    }
}

impl<S: RegionSink> RegionSink for WindowSink<'_, S> {
    fn label(&mut self, rect: Rect, rnn: &[u32], influence: f64) {
        match rect.intersection(&self.window) {
            Some(clipped) if clipped.area() > 0.0 => self.inner.label(clipped, rnn, influence),
            _ => self.dropped += 1,
        }
    }
}

/// Runs CREST restricted to `window` (sweep-space coordinates): labels
/// every region visible in the window, with rectangles clipped to it.
///
/// Cost scales with the circles intersecting the window, not the whole
/// arrangement — the zoom/recompute primitive.
pub fn crest_window<M: InfluenceMeasure, S: RegionSink>(
    arr: &SquareArrangement,
    window: Rect,
    measure: &M,
    sink: &mut S,
) -> SweepStats {
    let clipped = clip_arrangement(arr, &window);
    let mut wsink = WindowSink::new(window, sink);
    crest_sweep(&clipped, measure, &mut wsink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::CoordSpace;
    use crate::crest::crest_a_sweep;
    use crate::measure::CountMeasure;
    use crate::oracle::{area_by_signature, assert_area_maps_equal, rnn_at_square, signature};
    use crate::sink::CollectSink;
    use rnnhm_geom::Point;

    fn arr_from_squares(squares: Vec<Rect>) -> SquareArrangement {
        let owners = (0..squares.len() as u32).collect();
        let n = squares.len();
        SquareArrangement {
            squares,
            owners,
            space: CoordSpace::Identity,
            n_clients: n,
            dropped: 0,
            k: 1,
        }
    }

    fn pseudo_squares(n: usize, seed: u64) -> Vec<Rect> {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|_| Rect::centered(Point::new(next() * 10.0, next() * 10.0), 0.2 + next() * 1.2))
            .collect()
    }

    #[test]
    fn window_labels_match_oracle() {
        let arr = arr_from_squares(pseudo_squares(60, 1));
        let window = Rect::new(3.0, 7.0, 2.0, 8.0);
        let mut sink = CollectSink::default();
        let stats = crest_window(&arr, window, &CountMeasure, &mut sink);
        assert!(stats.labels > 0);
        for r in &sink.regions {
            assert!(window.contains_rect(&r.rect), "label escapes window: {:?}", r.rect);
            if r.rect.width() < 1e-9 || r.rect.height() < 1e-9 {
                continue;
            }
            assert_eq!(signature(&r.rnn), rnn_at_square(&arr, r.rect.center()));
        }
    }

    #[test]
    fn window_tiling_matches_full_run_clipped() {
        // Full-strip sweeps: clip the full run's labels to the window and
        // compare area-per-signature with the windowed run.
        let arr = arr_from_squares(pseudo_squares(50, 2));
        let window = Rect::new(2.0, 8.0, 3.0, 9.0);

        let mut full = CollectSink::default();
        crest_a_sweep(&arr, &CountMeasure, &mut full);
        let mut full_clipped = CollectSink::default();
        for r in &full.regions {
            if let Some(c) = r.rect.intersection(&window) {
                if c.area() > 0.0 {
                    full_clipped.label(c, &r.rnn, r.influence);
                }
            }
        }

        let clipped_arr = clip_arrangement(&arr, &window);
        let mut windowed_inner = CollectSink::default();
        let mut windowed = WindowSink::new(window, &mut windowed_inner);
        crest_a_sweep(&clipped_arr, &CountMeasure, &mut windowed);

        assert_area_maps_equal(
            &area_by_signature(&full_clipped.regions),
            &area_by_signature(&windowed_inner.regions),
            1e-9,
        );
    }

    #[test]
    fn window_cost_scales_with_window_content() {
        let arr = arr_from_squares(pseudo_squares(400, 3));
        let tiny = Rect::new(4.9, 5.1, 4.9, 5.1);
        let mut sink = CollectSink::default();
        let stats = crest_window(&arr, tiny, &CountMeasure, &mut sink);
        // Far fewer events than the full arrangement's 2n.
        assert!(
            stats.events < 2 * arr.len() as u64 / 4,
            "windowed sweep should process a fraction of the events ({} of {})",
            stats.events,
            2 * arr.len()
        );
    }

    #[test]
    fn empty_window_is_empty() {
        let arr = arr_from_squares(pseudo_squares(20, 4));
        let nowhere = Rect::new(100.0, 101.0, 100.0, 101.0);
        let mut sink = CollectSink::default();
        let stats = crest_window(&arr, nowhere, &CountMeasure, &mut sink);
        assert_eq!(stats.labels, 0);
        assert!(sink.regions.is_empty());
    }

    #[test]
    fn clip_preserves_owner_mapping() {
        let arr =
            arr_from_squares(vec![Rect::new(0.0, 4.0, 0.0, 4.0), Rect::new(6.0, 9.0, 6.0, 9.0)]);
        let window = Rect::new(3.0, 7.0, 0.0, 10.0);
        let clipped = clip_arrangement(&arr, &window);
        assert_eq!(clipped.owners, vec![0, 1]);
        assert_eq!(clipped.squares[0].x_hi, 4.0);
        assert_eq!(clipped.squares[0].x_lo, 3.0, "left side clipped to window");
        assert_eq!(clipped.squares[1].x_hi, 7.0, "right side clipped to window");
    }
}
