//! Courier service-point placement with capacity constraints — the
//! paper's motivating courier scenario (§I) with the utility measure of
//! [22]: every service point has a storage capacity, so the value of a
//! new location is the *system-wide* served demand after clients defect
//! to it, `Σ_f min(c(f), |R(f)|)`.
//!
//! ```text
//! cargo run --release --example courier_capacity
//! ```

use rnn_heatmap::prelude::*;
use rnnhm_data::gen::uniform;
use rnnhm_index::KdTree;

fn main() {
    // A synthetic service area: 400 potential clients, 25 existing
    // service points with tight capacities.
    let extent = Rect::new(0.0, 10.0, 0.0, 10.0);
    let clients = uniform(400, extent, 11);
    let facilities = uniform(25, extent, 23);

    // Current assignment: every client uses its nearest service point.
    let tree = KdTree::build(&facilities);
    let assigned: Vec<u32> =
        clients.iter().map(|o| tree.nearest(o, Metric::L2).expect("facilities").0).collect();
    let mut load = vec![0u32; facilities.len()];
    for &f in &assigned {
        load[f as usize] += 1;
    }
    // Capacities well below demand: the network is saturated.
    let capacities: Vec<u32> = vec![10; facilities.len()];
    let overloaded = load.iter().filter(|&&l| l > 10).count();
    println!(
        "{} clients / {} service points, {} service points over capacity",
        clients.len(),
        facilities.len(),
        overloaded
    );

    let measure = CapacityMeasure::new(assigned, capacities, 25);
    println!("served demand today: {:.0} of {} clients", measure.base_total(), clients.len());

    // Where would one new 50-slot service point help most? Color the
    // regions under the capacity measure and take the best.
    let arr =
        build_disk_arrangement(&clients, &facilities, Mode::Bichromatic).expect("non-empty input");
    let (best, stats) = crest_l2_max_region(&arr, &measure);
    let best = best.expect("some region exists");
    let c = best.rect.center();
    println!(
        "best new location: ({:.2}, {:.2}) -> served demand {:.0} \
         (+{:.0}); it would attract {} clients",
        c.x,
        c.y,
        best.influence,
        best.influence - measure.base_total(),
        best.rnn.len()
    );
    println!("CREST-L2 labeled {} regions across {} events", stats.labels, stats.events);

    // Cross-check with the filter-and-refine comparator of [22]. Its
    // enumeration is exponential in the overlap degree (this is exactly
    // what Figs 18-19 show), so give it a bounded node budget.
    let cfg = PruningConfig { max_nodes: 2_000_000, max_witnesses: 50_000 };
    let (pruned, pstats) = pruning_max_region(&arr, &measure, cfg);
    let pruned = pruned.expect("pruning finds a region");
    if pstats.truncated {
        assert!(
            pruned.influence <= best.influence + 1e-9,
            "a truncated pruning run can only find a lower bound"
        );
        println!(
            "pruning comparator hit its node budget (found {:.0}, CREST {:.0}) — \
             the exponential blow-up CREST avoids",
            pruned.influence, best.influence
        );
    } else {
        assert!(
            (pruned.influence - best.influence).abs() < 1e-9,
            "CREST and the pruning comparator must agree on the optimum"
        );
        println!(
            "pruning comparator agrees (explored {} assignments, {} witness tests)",
            pstats.leaves, pstats.witness_tests
        );
    }

    // A threshold exploration: all regions within 2 clients of optimal,
    // for the decision maker to weigh qualitative factors (§I).
    let mut near_best = ThresholdSink::new(best.influence - 2.0);
    crest_l2_sweep(&arr, &measure, &mut near_best);
    println!(
        "{} candidate regions lie within 2.0 of the optimum — room for \
         qualitative judgment",
        near_best.regions.len()
    );
}
