//! Concurrent sessions: two analysts fork the same city dataset,
//! apply divergent what-if edits, and render overlapping viewports
//! through one shared engine.
//!
//! ```text
//! cargo run --release --example concurrent_sessions
//! ```
//!
//! Watch the cache counters: the fork itself is free (same snapshot,
//! same tiles — the second analyst's first frame is all hits), each
//! analyst's edit isolates exactly the tiles its dirty region touched
//! (the rest are *aliased* to the new snapshot fingerprint, sharing
//! pixel payloads), and the untouched ancestor snapshot keeps serving
//! fully warm frames throughout.

use std::time::Instant;

use rnn_heatmap::prelude::*;
use rnn_heatmap::HeatMapBuilder;

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn main() {
    // A skewed synthetic city on the unit square.
    let data = Dataset::zipfian(4_256, 42);
    let (clients, facilities) = sample_clients_facilities(&data.points, 4_000, 256, 42);
    let engine = HeatMapBuilder::bichromatic(clients, facilities)
        .metric(Metric::Linf)
        .build_engine(CountMeasure)
        .expect("non-empty input");
    println!(
        "engine over {} NN-circles, {} facilities | shared tile cache: {} shards\n",
        engine.session().n_circles(),
        engine.session().n_facilities(),
        engine.cache_stats().shards.len(),
    );

    let city = Rect::new(0.0, 1.0, 0.0, 1.0);
    let (px_w, px_h) = (512, 512);
    let report = |who: &str, label: &str, before: &CacheStats, after: &CacheStats, t: f64| {
        println!(
            "{who:>8} {label:<28} {t:6.1} ms | +{} renders, +{} hits | cache {} tiles / {:.1} MiB",
            after.misses - before.misses,
            after.hits - before.hits,
            after.entries,
            after.bytes as f64 / (1 << 20) as f64,
        );
    };

    // Alice opens the city view cold; every covering tile renders.
    let alice = engine.session();
    let before = engine.cache_stats();
    let start = rnnhm_core::clock::now();
    let frame_alice = alice.viewport(city, px_w, px_h);
    report("alice", "cold city viewport", &before, &engine.cache_stats(), ms(start));

    // Bob forks Alice's session: O(1), same snapshot — his first
    // frame is served entirely from the tiles Alice just warmed.
    let bob = alice.fork();
    let before = engine.cache_stats();
    let start = rnnhm_core::clock::now();
    let frame_bob = bob.viewport(city, px_w, px_h);
    report("bob", "forked viewport (all warm)", &before, &engine.cache_stats(), ms(start));
    assert_eq!(frame_bob.values(), frame_alice.values(), "same snapshot, same pixels");
    drop((frame_alice, frame_bob));

    // Divergent what-if edits: Alice opens a store in the south-west,
    // Bob in the north-east. Each commit re-renders only its own
    // dirty tiles; everything else is aliased to the new snapshot.
    let mut alice = alice;
    let mut bob = bob;
    let before = engine.cache_stats();
    let start = rnnhm_core::clock::now();
    let (_, dirty_a) = alice.add_facility(Point::new(0.25, 0.25)).expect("bichromatic");
    let frame_a = alice.viewport(city, px_w, px_h);
    report("alice", "edit SW + re-render", &before, &engine.cache_stats(), ms(start));
    let before = engine.cache_stats();
    let start = rnnhm_core::clock::now();
    let (_, dirty_b) = bob.add_facility(Point::new(0.75, 0.75)).expect("bichromatic");
    let frame_b = bob.viewport(city, px_w, px_h);
    report("bob", "edit NE + re-render", &before, &engine.cache_stats(), ms(start));
    let area = |d: &DirtyRegion| -> f64 { d.rects().iter().map(Rect::area).sum() };
    println!(
        "\n  divergence: alice dirtied {:.1}% of the map, bob {:.1}%; frames differ: {}",
        area(&dirty_a) * 100.0,
        area(&dirty_b) * 100.0,
        frame_a.values() != frame_b.values(),
    );
    drop((frame_a, frame_b));

    // The ancestor snapshot is untouched by both branches: a third
    // session on the root still renders the original field, fully
    // warm (zero new renders).
    let root = engine.session();
    let before = engine.cache_stats();
    let start = rnnhm_core::clock::now();
    let _ = root.viewport(city, px_w, px_h);
    report("root", "ancestor viewport (warm)", &before, &engine.cache_stats(), ms(start));
    let after = engine.cache_stats();
    assert_eq!(after.misses, before.misses, "ancestor tiles survived both edits");

    // Shard + single-flight accounting.
    let st = engine.cache_stats();
    let occupancy: Vec<String> = st.shards.iter().map(|s| s.entries.to_string()).collect();
    println!(
        "\nsession totals: {} hits, {} misses ({:.0}% hit rate), {} insertions\n\
         cache: {} tiles / {:.1} MiB (high water {:.1} MiB) | per-shard occupancy [{}]\n\
         single-flight: {} waits, {} renders deduplicated",
        st.hits,
        st.misses,
        st.hit_rate() * 100.0,
        st.insertions,
        st.entries,
        st.bytes as f64 / (1 << 20) as f64,
        st.bytes_high_water as f64 / (1 << 20) as f64,
        occupancy.join(" "),
        st.single_flight_waits,
        st.single_flight_dedups,
    );
}
