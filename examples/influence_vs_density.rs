//! Influence is not density — the reproduction of paper Fig 2.
//!
//! ```text
//! cargo run --release --example influence_vs_density
//! ```
//!
//! A dense client cluster sits in the upper-left, but existing facilities
//! compete for exactly those clients; the most influential locations for
//! a *new* facility end up in the middle of the map, where clients are
//! sparser but unserved. "Without the RNN heat map, it is very difficult
//! or impossible to explore all these different choices."

use rnn_heatmap::prelude::*;
use rnnhm_data::gen::uniform;
use rnnhm_heatmap::render::ascii_art;

fn main() {
    let mut clients = Vec::new();
    // Dense cluster in the upper-left...
    clients.extend(uniform(300, Rect::new(0.5, 2.5, 7.5, 9.5), 1));
    // ...sparse clients through the middle...
    clients.extend(uniform(60, Rect::new(3.5, 7.0, 3.5, 6.5), 2));
    // ...background noise everywhere.
    clients.extend(uniform(40, Rect::new(0.0, 10.0, 0.0, 10.0), 3));

    // Facilities camp densely on the cluster (fierce competition: every
    // cluster client already has a facility nearby, so its NN-circle is
    // tiny) plus one far corner outpost. The sparse middle clients are
    // far from every facility — large, mutually overlapping NN-circles.
    let mut facilities = uniform(60, Rect::new(0.5, 2.5, 7.5, 9.5), 4);
    facilities.push(Point::new(9.5, 0.5));

    let arr = build_square_arrangement(&clients, &facilities, Metric::L1, Mode::Bichromatic)
        .expect("non-empty input");

    let mut regions = CollectSink::default();
    crest_sweep(&arr, &CountMeasure, &mut regions);
    let top = top_k(&regions.regions, 4);

    println!("Top-4 most influential regions for a new facility:");
    for (i, r) in top.iter().enumerate() {
        // Labels are in the rotated (L1 sweep) frame; map back.
        let c = arr.space.to_original(r.rect.center());
        println!("  #{}: influence {:>5.0} at ({:.2}, {:.2})", i + 1, r.influence, c.x, c.y);
    }

    // The punchline: the best regions are NOT inside the dense cluster.
    let cluster = Rect::new(0.5, 2.5, 7.5, 9.5);
    let winner = arr.space.to_original(top[0].rect.center());
    let density_in_cluster = clients.iter().filter(|p| cluster.contains_closed(**p)).count();
    println!(
        "\nclient density: {density_in_cluster}/{} clients live in the upper-left cluster,",
        clients.len()
    );
    if cluster.contains_closed(winner) {
        println!("yet the top region IS in the cluster — competition was too weak this run.");
    } else {
        println!(
            "yet the most influential location ({:.2}, {:.2}) lies OUTSIDE it — \
             the facilities already there absorb the demand.",
            winner.x, winner.y
        );
    }

    // Heat map of the whole space for visual comparison.
    let spec = GridSpec::new(64, 24, Rect::new(0.0, 10.0, 0.0, 10.0));
    let raster = rasterize_squares(&arr, &CountMeasure, spec);
    println!("\nInfluence heat map:\n{}", ascii_art(&raster));
}
