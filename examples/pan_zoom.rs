//! Interactive-style exploration: replay a pan/zoom camera path
//! through the tile-pyramid viewport API and watch the cache work.
//!
//! ```text
//! cargo run --release --example pan_zoom
//! ```
//!
//! The paper positions RNN heat maps as a tool an analyst *explores*:
//! pan across the city, zoom into a hot area, compare candidate sites.
//! Each frame below is one camera position; the viewport layer fetches
//! the covering tiles (rendering only the cache misses), stitches them,
//! and — before the exact tiles are in — can serve an instant coarse
//! preview from parent tiles.

use rnn_heatmap::prelude::*;
use rnn_heatmap::HeatMapBuilder;
use rnnhm_heatmap::render::ascii_art;

fn main() {
    // A skewed synthetic city on the unit square: clustered clients,
    // a few existing facilities.
    let data = Dataset::zipfian(4_256, 42);
    let (clients, facilities) = sample_clients_facilities(&data.points, 4_000, 256, 42);
    let map = HeatMapBuilder::bichromatic(clients, facilities)
        .metric(Metric::Linf)
        .build(CountMeasure)
        .expect("non-empty input");
    let world = map.tile_scheme().world();
    println!(
        "heat map over {} NN-circles; tile world [{:.2}, {:.2}] x [{:.2}, {:.2}]\n",
        map.n_circles(),
        world.x_lo,
        world.x_hi,
        world.y_lo,
        world.y_hi
    );

    // Camera path: wide establishing shot, a pan to the east, then two
    // zoom steps into the hottest quarter, then back out (all cached).
    let full = Rect::new(0.0, 1.0, 0.0, 1.0);
    let path: &[(&str, Rect)] = &[
        ("establishing shot", full),
        ("pan east", Rect::new(0.25, 1.0, 0.0, 0.75)),
        ("zoom: north-east", Rect::new(0.5, 1.0, 0.25, 0.75)),
        ("zoom: tight", Rect::new(0.6, 0.85, 0.35, 0.6)),
        ("zoom back out", full),
    ];

    let (px_w, px_h) = (512, 512);
    for (label, rect) in path {
        // Instant coarse preview from whatever is already cached …
        let preview = map.viewport_preview(*rect, px_w, px_h);
        // … then the exact frame (cache misses render in parallel).
        let start = rnnhm_core::clock::now();
        let frame = map.viewport(*rect, px_w, px_h);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let stats = map.tile_cache_stats();
        let (_, hottest) = frame.min_max();
        println!(
            "{label:>20}: {}x{} px in {ms:6.1} ms | preview {:3.0}% resolved | \
             cache {} tiles / {:.1} MiB, {} hits, {} misses, {} invalidations | \
             peak influence {hottest:.0}",
            frame.spec.width,
            frame.spec.height,
            preview.resolved * 100.0,
            stats.entries,
            stats.bytes as f64 / (1 << 20) as f64,
            stats.hits,
            stats.misses,
            stats.invalidations,
        );
    }

    // Shard + single-flight accounting of the whole camera path.
    let st = map.tile_cache_stats();
    let occupancy: Vec<String> = st.shards.iter().map(|s| s.entries.to_string()).collect();
    println!(
        "\ncache: high water {:.1} MiB | per-shard occupancy [{}] | \
         single-flight: {} waits, {} dedups",
        st.bytes_high_water as f64 / (1 << 20) as f64,
        occupancy.join(" "),
        st.single_flight_waits,
        st.single_flight_dedups,
    );
    // Count tiles are integer-valued, so they cache as 2-byte-per-pixel
    // quantized payloads (bit-exact; see rnnhm_heatmap::quant) —
    // ~4x the effective tile capacity of raw f64 tiles.
    println!(
        "payloads: {:.1} MiB quantized / {:.1} MiB exact ({:.0}% of cached bytes compact)",
        st.bytes_quantized as f64 / (1 << 20) as f64,
        st.bytes_exact as f64 / (1 << 20) as f64,
        if st.bytes > 0 { 100.0 * st.bytes_quantized as f64 / st.bytes as f64 } else { 0.0 },
    );

    // Show the final (cached) frame as terminal art.
    let last = map.viewport(path[path.len() - 1].1, 64, 24);
    println!("\nfinal frame (darker glyph = more influence):\n{}", ascii_art(&last));
}
