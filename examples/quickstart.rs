//! Quickstart: the README's code block, runnable.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Build an RNN heat map in one expression with the high-level API,
//! find the most influential region, score a candidate site, and
//! render the map.

use rnn_heatmap::prelude::*;
use rnn_heatmap::HeatMapBuilder;
use rnnhm_heatmap::render::ascii_art;

fn main() {
    // Clients (e.g. customers) and facilities (e.g. existing stores).
    let clients = vec![Point::new(0.0, 0.0), Point::new(2.0, 1.0), Point::new(1.0, 3.0)];
    let facilities = vec![Point::new(1.0, 1.0)];
    let map = HeatMapBuilder::bichromatic(clients, facilities)
        .metric(Metric::L2)
        .build(CountMeasure)
        .expect("non-empty input");

    // The single most influential region and its RNN set.
    let best = map.max_region().expect("some region exists");
    let at = map.region_center(&best);
    println!(
        "best region: influence {:.0} at ({:.2}, {:.2}) serving clients {:?}",
        best.influence, at.x, at.y, best.rnn
    );

    // Score an arbitrary candidate site.
    let (rnn, influence) = map.influence_at(Point::new(0.5, 0.5));
    println!("candidate (0.5, 0.5): influence {influence:.0}, RNN set {rnn:?}");

    // Render the full heat map over a chosen extent.
    let raster = map.raster(GridSpec::new(512, 512, Rect::new(-1.0, 3.0, -1.0, 4.0)));
    let (lo, hi) = raster.min_max();
    println!("rendered 512x512 raster, influence range [{lo:.0}, {hi:.0}]");

    // Interactive exploration: tiled, cached viewport rendering.
    let view = Rect::new(-1.0, 3.0, -1.0, 4.0);
    let frame = map.viewport(view, 512, 512); // renders + caches the covering tiles
    let preview = map.viewport_preview(view, 512, 512); // instant, cache-only
    assert_eq!(preview.resolved, 1.0); // the whole viewport is already cached
    let stats = map.tile_cache_stats();
    println!(
        "viewport {}x{} px from {} cached tiles (preview {:.0}% resolved)",
        frame.spec.width,
        frame.spec.height,
        stats.entries,
        preview.resolved * 100.0
    );

    // A coarse terminal view (darker glyph = more influence).
    let small = map.raster(GridSpec::new(64, 24, Rect::new(-1.0, 3.0, -1.0, 4.0)));
    println!("{}", ascii_art(&small));
}
