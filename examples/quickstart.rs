//! Quickstart: build an RNN heat map for a small scenario and explore it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Mirrors the paper's running example: clients (potential customers) and
//! facilities (existing service points); the heat of a location is the
//! number of clients that would switch to a facility opened there.

use rnn_heatmap::prelude::*;
use rnnhm_heatmap::render::ascii_art;

fn main() {
    // A toy city block: a cluster of clients in the north-west, a strip
    // of clients along the south, and two existing facilities.
    let clients = vec![
        Point::new(1.0, 8.0),
        Point::new(1.5, 8.5),
        Point::new(2.0, 8.2),
        Point::new(1.2, 7.6),
        Point::new(2.5, 9.0),
        Point::new(2.0, 1.0),
        Point::new(4.0, 1.2),
        Point::new(6.0, 0.8),
        Point::new(8.0, 1.1),
        Point::new(5.0, 5.0),
    ];
    let facilities = vec![Point::new(3.0, 6.0), Point::new(6.5, 2.5)];

    // 1. Reduce the heat map problem to Region Coloring: build the
    //    NN-circle arrangement (L2 distance here).
    let arr =
        build_disk_arrangement(&clients, &facilities, Mode::Bichromatic).expect("non-empty input");
    println!(
        "{} clients, {} facilities -> {} NN-circles",
        clients.len(),
        facilities.len(),
        arr.len()
    );

    // 2. Color the regions with CREST-L2, collecting every labeled region.
    let mut regions = CollectSink::default();
    let stats = crest_l2_sweep(&arr, &CountMeasure, &mut regions);
    println!(
        "CREST: {} region labelings, {} events, max |RNN| = {}",
        stats.labels, stats.events, stats.max_rnn
    );

    // 3. Post-process: the five most influential regions.
    println!("\nTop regions by influence:");
    for (i, r) in top_k(&regions.regions, 5).iter().enumerate() {
        let c = r.rect.center();
        println!(
            "  #{}: influence {:.0} at ({:.2}, {:.2}) serving clients {:?}",
            i + 1,
            r.influence,
            c.x,
            c.y,
            r.rnn
        );
    }

    // 4. Render the full heat map (exact, per-pixel) as terminal art.
    let spec = GridSpec::new(64, 24, Rect::new(0.0, 10.0, 0.0, 10.0));
    let raster = rasterize_disks(&arr, &CountMeasure, spec);
    println!("\nHeat map (darker glyph = more influence):\n{}", ascii_art(&raster));
}
