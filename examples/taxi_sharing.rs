//! The taxi-sharing scenario of paper Fig 3: why generic influence
//! measures need region coloring rather than superimposition.
//!
//! ```text
//! cargo run --release --example taxi_sharing
//! ```
//!
//! Clients are app users waiting for taxis; facilities are taxis. A
//! driver profits from picking up *connected* passengers (destinations
//! within a kilometer), so the influence of a pickup location is the
//! number of compatibility edges inside its RNN set — not its size.
//! Superimposition (counting overlapping NN-circles) ranks two regions
//! equally at heat 3; the connectivity measure reveals only one of them
//! actually contains three mutually-compatible passengers.

use rnn_heatmap::prelude::*;

fn main() {
    // Fig 3 layout (ids 0..=3 are the paper's o1..o4): o1, o2, o4 are
    // pairwise-connected passengers; o3 is a loner. The NN-circles work
    // out to C(o1) = [2,6]², C(o2) = [5,11]×[1,7], C(o3) = [-1,5]×[3,9],
    // C(o4) = [1,8]×[3,10]: {o1,o2,o4} and {o1,o3,o4} both have 3-way
    // overlap regions, but no 4-way overlap exists.
    let clients = vec![
        Point::new(4.0, 4.0), // o1
        Point::new(8.0, 4.0), // o2
        Point::new(2.0, 6.0), // o3
        Point::new(4.5, 6.5), // o4
    ];
    let facilities = vec![Point::new(2.0, 3.0), Point::new(8.0, 7.0)]; // taxis
    let edges = [(0u32, 1u32), (0, 3), (1, 3)]; // connected passengers

    let arr = build_square_arrangement(&clients, &facilities, Metric::Linf, Mode::Bichromatic)
        .expect("non-empty input");

    // Superimposition = count measure. Its best regions:
    let mut count_regions = CollectSink::default();
    crest_sweep(&arr, &CountMeasure, &mut count_regions);
    let count_top = top_k(&count_regions.regions, 3);
    println!("Superimposition (count measure) top regions:");
    for r in &count_top {
        println!("  heat {:.1} with RNN set {:?}", r.influence, sorted(&r.rnn));
    }

    // The connectivity measure on the same arrangement:
    let connectivity = ConnectivityMeasure::from_edges(clients.len(), &edges);
    let mut conn_regions = CollectSink::default();
    crest_sweep(&arr, &connectivity, &mut conn_regions);
    let conn_top = top_k(&conn_regions.regions, 3);
    println!("\nConnectivity measure top regions:");
    for r in &conn_top {
        println!("  heat {:.1} with RNN set {:?}", r.influence, sorted(&r.rnn));
    }

    // The paper's point: under the count measure several regions tie at
    // the top, but only the one containing {o1, o2, o4} has all three
    // compatible passengers (heat 3.0) under the connectivity measure.
    let best = &conn_top[0];
    assert_eq!(best.influence, 3.0, "the connected triple must win");
    assert_eq!(sorted(&best.rnn), vec![0, 1, 3]);
    let runner_up = conn_top.get(1).map(|r| r.influence).unwrap_or(0.0);
    assert!(runner_up < 3.0, "no other region has 3 compatible passengers");
    println!(
        "\nBest pickup region: RNN set {:?} with {} shared-ride pairs — \
         superimposition could not have told it apart.",
        sorted(&best.rnn),
        best.influence
    );
}

fn sorted(v: &[u32]) -> Vec<u32> {
    let mut s = v.to_vec();
    s.sort_unstable();
    s
}
