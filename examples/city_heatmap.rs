//! City-scale heat map — the reproduction of paper Figs 1 and 15.
//!
//! ```text
//! cargo run --release --example city_heatmap [nyc|la] [output.ppm]
//! ```
//!
//! Samples 20,000 clients and 6,000 facilities from the synthetic city
//! POI set (the paper's setup for the showcase maps: "the number of
//! clients is usually larger than the number of facilities"), measures
//! influence by RNN-set size, and writes a PPM heat map. Dark regions on
//! water/mountain voids stay cold, clusters glow — the geographic
//! correlation the paper points out.

use std::fs::File;

use rnn_heatmap::prelude::*;
use rnnhm_data::{la, nyc};
use rnnhm_heatmap::quant::TilePayload;
use rnnhm_heatmap::write_ppm;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let city = args.first().map(String::as_str).unwrap_or("nyc");
    let default_out = format!("heatmap_{city}.ppm");
    let out = args.get(1).map(String::as_str).unwrap_or(&default_out);

    let points = match city {
        "nyc" => nyc(),
        "la" => la(),
        other => {
            eprintln!("unknown city `{other}` (expected nyc|la)");
            std::process::exit(2);
        }
    };
    println!("{city}: {} POIs", points.len());

    let (clients, facilities) = sample_clients_facilities(&points, 20_000, 6_000, 1);
    let arr = build_square_arrangement(&clients, &facilities, Metric::Linf, Mode::Bichromatic)
        .expect("non-empty city");
    println!("built {} NN-circles ({} dropped as zero-radius)", arr.len(), arr.dropped);

    // Exact scanline rasterization (row-parallel, any measure). The
    // count-only superimposition is timed alongside for comparison —
    // the scanline engine stays within a small factor of it while
    // supporting every influence measure.
    let extent = Rect::bounding(&points).expect("non-empty");
    let spec = GridSpec::new(900, 900, extent);
    let start = rnnhm_core::clock::now();
    let raster = rasterize_squares(&arr, &CountMeasure, spec);
    let scanline_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = rnnhm_core::clock::now();
    let fast = rasterize_count_squares_fast(&arr, spec);
    let fast_ms = start.elapsed().as_secs_f64() * 1e3;
    let (lo, hi) = raster.min_max();
    println!("heat range: [{lo}, {hi}]");
    println!(
        "rasterized exactly in {scanline_ms:.1} ms (count-only superimposition: {fast_ms:.1} ms)"
    );
    drop(fast);

    let mut f = File::create(out).expect("create output file");
    write_ppm(&mut f, &raster, ColorRamp::Heat).expect("write ppm");
    println!("wrote {out}");

    // What this frame would cost to *cache*: count rasters are
    // integer-valued, so the tile layer stores them quantized (u16
    // codes, bit-exact round-trip) instead of raw f64.
    let raw_bytes = std::mem::size_of_val(raster.values());
    let payload = TilePayload::encode(raster.clone(), CountMeasure.integral_influence());
    println!(
        "cached form: {} ({} bytes vs {} raw, {:.1}x smaller)",
        if payload.quantized() { "quantized" } else { "exact f64" },
        payload.bytes(),
        raw_bytes,
        raw_bytes as f64 / payload.bytes() as f64,
    );

    // And the exploration the heat map is for: where are the most
    // influential spots, and how influential are they?
    let mut top = TopKSink::new(5);
    let stats = crest_sweep(&arr, &CountMeasure, &mut top);
    println!(
        "CREST labeled {} regions over {} events (max |RNN| = {})",
        stats.labels, stats.events, stats.max_rnn
    );
    println!("top regions:");
    for (i, r) in top.top().iter().enumerate() {
        let c = r.rect.center();
        println!("  #{}: influence {:.0} near ({:.4}, {:.4})", i + 1, r.influence, c.x, c.y);
    }
}
