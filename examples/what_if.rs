//! What-if editing walkthrough: add, move and remove facilities on a
//! live heat map and watch influence — and the caches — react.
//!
//! ```text
//! cargo run --release --example what_if
//! ```
//!
//! The paper frames RNN heat maps as a tool for *influence
//! exploration*: an analyst asks "what if I open a store here?" and
//! watches influence shift. Each edit below goes through the
//! incremental edit path (`rnnhm_core::edit`): only the NN-circles of
//! affected clients update, only the cached viewport tiles
//! intersecting the returned dirty region re-render, and a full-frame
//! raster held across the edits is repaired in place with
//! `refresh_raster` instead of re-rendered.

use std::time::Instant;

use rnn_heatmap::prelude::*;
use rnn_heatmap::HeatMapBuilder;
use rnnhm_heatmap::render::ascii_art;

fn main() {
    // A skewed synthetic city on the unit square: clustered clients,
    // a few existing facilities.
    let data = Dataset::zipfian(4_256, 42);
    let (clients, facilities) = sample_clients_facilities(&data.points, 4_000, 256, 42);
    let mut map = HeatMapBuilder::bichromatic(clients, facilities)
        .metric(Metric::Linf)
        .build(CountMeasure)
        .expect("non-empty input");

    // Open a viewport over the whole city and hold a full-frame raster
    // too (two consumers of the same edits).
    let view = Rect::new(0.0, 1.0, 0.0, 1.0);
    let (px_w, px_h) = (512, 512);
    let frame = map.viewport(view, px_w, px_h);
    let mut held = map.raster(frame.spec);
    println!(
        "city heat map: {} NN-circles, {} facilities, viewport {}x{} px\n",
        map.n_circles(),
        map.n_facilities(),
        frame.spec.width,
        frame.spec.height
    );
    drop(frame);

    // Where would a new facility matter most? Ask the heat map.
    let best = map.max_region().expect("regions exist");
    let site = map.region_center(&best);
    println!(
        "hottest region: influence {:.0} at ({:.3}, {:.3}) — open a store there\n",
        best.influence, site.x, site.y
    );

    // Script: open at the hot spot, reconsider and move it, then give
    // up and close it. Every step reports what the edit touched.
    let mut opened = None;
    for step in 0..3 {
        let before = map.tile_cache_stats();
        let start = rnnhm_core::clock::now();
        let (label, dirty) = match step {
            0 => {
                let (id, dirty) = map.add_facility(site).expect("bichromatic map");
                opened = Some(id);
                ("open at hot spot", dirty)
            }
            1 => {
                let id = opened.expect("opened in step 0");
                let target = Point::new(site.x * 0.5 + 0.25, site.y * 0.5 + 0.25);
                ("move halfway to center", map.move_facility(id, target).expect("live id"))
            }
            _ => {
                let id = opened.take().expect("still open");
                ("close it again", map.remove_facility(id).expect("live id"))
            }
        };
        map.refresh_raster(&mut held, &dirty);
        let refreshed = ms(start);
        let start = rnnhm_core::clock::now();
        let frame = map.viewport(view, px_w, px_h);
        let rendered = ms(start);
        let stats = map.tile_cache_stats();
        let dirty_area: f64 = dirty.rects().iter().map(Rect::area).sum();
        println!(
            "{label:>22}: dirty {:5.1}% of the map in {} box(es) | {} tiles invalidated, {} \
             re-rendered | edit+refresh {refreshed:5.1} ms, viewport {rendered:5.1} ms | peak \
             influence {:.0}",
            dirty_area * 100.0 / view.area(),
            dirty.rects().len(),
            stats.invalidations - before.invalidations,
            stats.misses - before.misses,
            frame.min_max().1,
        );
        drop(frame);
    }

    // After open + move + close, the field is exactly the original.
    let back = map.viewport(view, px_w, px_h);
    let identical =
        back.values().iter().zip(held.values()).all(|(a, b)| a.to_bits() == b.to_bits());
    let stats = map.tile_cache_stats();
    let occupancy: Vec<String> = stats.shards.iter().map(|s| s.entries.to_string()).collect();
    println!(
        "\nround trip: viewport and refreshed raster agree bit-for-bit: {identical}\n\
         cache over the session: {} hits, {} misses, {} invalidations, {} tiles / {:.1} MiB\n\
         (high water {:.1} MiB | per-shard occupancy [{}] | single-flight {} waits, {} dedups)",
        stats.hits,
        stats.misses,
        stats.invalidations,
        stats.entries,
        stats.bytes as f64 / (1 << 20) as f64,
        stats.bytes_high_water as f64 / (1 << 20) as f64,
        occupancy.join(" "),
        stats.single_flight_waits,
        stats.single_flight_dedups,
    );

    // Show the final (restored) frame as terminal art.
    let last = map.viewport(view, 64, 24);
    println!("\nfinal frame (darker glyph = more influence):\n{}", ascii_art(&last));
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}
