//! Dynamic heat maps under client motion — the paper's taxi-sharing
//! motivation ("the heat map may change as clients move around and need
//! to be recomputed frequently", §I), plus the zoom primitive of §VIII-A.
//!
//! ```text
//! cargo run --release --example dynamic_taxi
//! ```
//!
//! Passengers move under a random-waypoint model; every tick the RNN
//! heat map is recomputed from scratch with CREST (fast enough for
//! interactive rates at city scale) and a zoomed viewport is recomputed
//! with the windowed sweep, whose cost tracks the viewport content.

use rnn_heatmap::prelude::*;
use rnnhm_data::gen::uniform;
use rnnhm_data::motion::RandomWaypoint;

fn main() {
    let extent = Rect::new(0.0, 100.0, 0.0, 100.0);
    // 5,000 waiting passengers, 400 taxis.
    let passengers = uniform(5_000, extent, 21);
    let taxis = uniform(400, extent, 22);
    let mut mover = RandomWaypoint::new(passengers, extent, 0.5, 2.0, 23);

    // The dispatcher watches a downtown viewport.
    let viewport = Rect::new(40.0, 60.0, 40.0, 60.0);

    println!("tick | full sweep | labels | window sweep | window labels | hottest");
    for tick in 0..10 {
        mover.step();
        let clients = mover.positions();

        // NN-circle construction (untimed in the paper's model; shown
        // here because a dynamic system pays it every tick too).
        let arr = build_square_arrangement(clients, &taxis, Metric::Linf, Mode::Bichromatic)
            .expect("non-empty input");

        let t0 = rnnhm_core::clock::now();
        let mut best = MaxSink::default();
        let full_stats = crest_sweep(&arr, &CountMeasure, &mut best);
        let full_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = rnnhm_core::clock::now();
        let mut window_best = MaxSink::default();
        let win_stats = crest_window(&arr, viewport, &CountMeasure, &mut window_best);
        let win_ms = t1.elapsed().as_secs_f64() * 1e3;

        let hottest = best.best.as_ref().map(|r| r.influence).unwrap_or(0.0);
        println!(
            "{tick:>4} | {full_ms:>8.1}ms | {:>6} | {win_ms:>10.1}ms | {:>13} | {hottest:>6.0}",
            full_stats.labels, win_stats.labels
        );

        // The windowed optimum can never exceed the global optimum.
        if let (Some(w), Some(g)) = (&window_best.best, &best.best) {
            assert!(w.influence <= g.influence + 1e-9);
        }
    }
    println!(
        "\nThe windowed sweep tracks viewport content, not city size — \
         the zoom/recompute primitive for interactive exploration."
    );
}
