//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored micro-implementation provides the subset of the proptest API
//! the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`strategy::Strategy`] with `prop_map`, ranges, tuples,
//! * [`collection`]`::{vec, hash_set, btree_set}`,
//! * [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`],
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from real proptest: cases are drawn from a deterministic
//! per-test RNG (seeded from the test's name, so failures reproduce on
//! every run) and failing cases are *not* shrunk — the assertion message
//! plus determinism stand in for shrinking. That trade keeps the stub
//! dependency-free while preserving the tests' coverage intent.

pub mod test_runner {
    /// Per-test configuration. Only the case count is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic per-test generator (SplitMix64 over an FNV-hashed
    /// test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from the test's name.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// A uniform index in `0..n` (`n > 0`).
        #[inline]
        pub fn index(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }

        /// A uniform `f64` in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of random values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking; a
    /// strategy is just a seeded generator.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice between alternatives (see [`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds the union; panics on an empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// A strategy always yielding clones of one value (proptest's `Just`).
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::{BTreeSet, HashSet};
    use std::hash::Hash;
    use std::ops::Range;

    fn draw_len(size: &Range<usize>, rng: &mut TestRng) -> usize {
        assert!(size.start < size.end, "empty size range");
        size.start + rng.index(size.end - size.start)
    }

    /// `Vec<T>` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = draw_len(&self.size, rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `HashSet<T>` strategy; duplicates are retried a bounded number of
    /// times, so the final size may fall below the drawn target.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = draw_len(&self.size, rng);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `BTreeSet<T>` strategy (same size semantics as [`hash_set`]).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = draw_len(&self.size, rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Runs each contained `#[test] fn name(arg in strategy, ...) { body }`
/// over many random cases. Accepts an optional leading
/// `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let __config = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            $(let $arg = $strat;)+
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $arg.generate(&mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property (plain `assert!` here: the
/// stub reports failures by panicking instead of shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec(...)` works after a
    /// glob import of the prelude, as with real proptest.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        0u32..10
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(v in 3i64..9, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&v));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn map_and_collections(
            xs in prop::collection::vec(small().prop_map(|v| v * 2), 1..20),
            set in prop::collection::hash_set(0u32..50, 0..10),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|x| x % 2 == 0));
            prop_assert!(set.len() < 10);
        }

        #[test]
        fn oneof_covers_arms(v in prop_oneof![0u32..10, 100u32..110]) {
            prop_assert!(v < 10 || (100..110).contains(&v));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
