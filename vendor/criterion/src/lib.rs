//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored micro-harness provides the criterion API surface the bench
//! targets use (`criterion_group!` / `criterion_main!`, benchmark
//! groups, `bench_with_input`, `BenchmarkId`) backed by a simple
//! wall-clock sampler: per benchmark it calibrates an iteration count,
//! collects `sample_size` samples, and prints min / median / mean
//! per-iteration times in criterion's spirit (no statistical analysis,
//! no HTML reports).
//!
//! Environment knobs:
//!
//! * `CRITERION_STUB_SAMPLE_MS` — target milliseconds of measurement per
//!   benchmark (default 200).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement budget per benchmark.
fn budget() -> Duration {
    let ms = std::env::var("CRITERION_STUB_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms.max(1))
}

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _criterion: self, name, sample_size }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.default_sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group (printing-only in the stub).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs the workload.
pub struct Bencher {
    sample_size: usize,
    /// Mean nanoseconds per iteration, filled by `iter`.
    result_ns: Option<Stats>,
}

#[derive(Debug, Clone, Copy)]
struct Stats {
    min_ns: f64,
    median_ns: f64,
    mean_ns: f64,
}

impl Bencher {
    /// Times `f`, calibrating iterations per sample to the measurement
    /// budget.
    // This vendored stand-in cannot depend on rnnhm_core, so it reads
    // the clock directly instead of via rnnhm_core::clock::now.
    #[allow(clippy::disallowed_methods)]
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: run once (also warms caches), scale to the budget.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let total_budget = budget();
        let per_sample = total_budget.as_secs_f64() / self.sample_size as f64;
        let iters = (per_sample / once.as_secs_f64()).floor().max(1.0) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        let min_ns = samples[0];
        let median_ns = samples[samples.len() / 2];
        let mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
        self.result_ns = Some(Stats { min_ns, median_ns, mean_ns });
    }
}

fn run_benchmark(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { sample_size, result_ns: None };
    f(&mut b);
    match b.result_ns {
        Some(s) => eprintln!(
            "bench {label}: min {} / median {} / mean {}",
            fmt_ns(s.min_ns),
            fmt_ns(s.median_ns),
            fmt_ns(s.mean_ns)
        ),
        None => eprintln!("bench {label}: no measurement (iter never called)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        std::env::set_var("CRITERION_STUB_SAMPLE_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let input = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::new("sum", input.len()), &input, |b, v| {
            b.iter(|| v.iter().sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
        c.bench_function("free", |b| b.iter(|| black_box(42)));
    }

    #[test]
    fn id_formats() {
        let id = BenchmarkId::new("algo", 128);
        assert_eq!(id.label, "algo/128");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
