//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored micro-implementation provides exactly the 0.9-style API
//! surface the workspace uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`],
//! * [`Rng::random`] for `f64` / `bool` / integer types,
//! * [`Rng::random_range`] over half-open integer ranges,
//! * [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64 — not cryptographic, but statistically
//! solid for test workloads and fully deterministic per seed, which is
//! all the workspace requires (every caller seeds explicitly).

/// A source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the full domain ([`Rng::random`]).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types usable with [`Rng::random_range`].
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty random_range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty random_range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample over the type's full domain (`f64` in `[0, 1)`).
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from a half-open range `lo..hi`.
    #[inline]
    fn random_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.random_range(3..8usize);
            assert!((3..8).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
