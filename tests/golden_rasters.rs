//! Golden-raster snapshot tests: small rendered grids for every
//! measure × metric combination are hashed into checked-in constants,
//! so a future raster refactor cannot silently change output.
//!
//! Everything here is deterministic and platform-independent: the
//! instance comes from a fixed LCG, all arithmetic is IEEE f64 with
//! correctly rounded ops (`sqrt` included), weights are dyadic so
//! sums are exact in any order, and the scanline renderer is
//! bit-identical across band counts (`tests/scanline_matches_oracle`),
//! so core-count differences cannot move a bit.
//!
//! ## Regenerating
//!
//! After an *intentional* output change, print the new table with
//!
//! ```text
//! cargo test --test golden_rasters -- --ignored --nocapture
//! ```
//!
//! and replace the `GOLDEN` constant below with the printed rows —
//! after convincing yourself the change is meant to alter pixels
//! (compare against the per-pixel oracle first).

use rnn_heatmap::prelude::*;
use rnn_heatmap::HeatMapBuilder;
use rnnhm_core::arrangement::fnv1a_words;

/// 60 clients + 7 facilities from a fixed LCG on [0, 10]².
fn instance() -> (Vec<Point>, Vec<Point>) {
    let mut state = 0x5eed_cafe_u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64) * 10.0
    };
    let clients = (0..60).map(|_| Point::new(next(), next())).collect();
    let facilities = (0..7).map(|_| Point::new(next(), next())).collect();
    (clients, facilities)
}

fn spec() -> GridSpec {
    GridSpec::new(64, 64, Rect::new(-1.0, 11.0, -1.0, 11.0))
}

fn hash_raster(r: &HeatRaster) -> u64 {
    fnv1a_words(r.values().iter().map(|v| v.to_bits()))
}

fn metric_name(m: Metric) -> &'static str {
    match m {
        Metric::L1 => "L1",
        Metric::L2 => "L2",
        Metric::Linf => "Linf",
    }
}

/// Renders one measure/metric combo and returns its hash.
fn render_hash(measure_key: &str, metric: Metric) -> u64 {
    let (clients, facilities) = instance();
    let n = clients.len();
    let builder = HeatMapBuilder::bichromatic(clients, facilities).metric(metric);
    let raster = match measure_key {
        "count" => builder.build(CountMeasure).unwrap().raster(spec()),
        "weighted" => {
            let weights: Vec<f64> = (0..n).map(|i| (i % 9) as f64 * 0.25).collect();
            builder.build(WeightedMeasure::new(weights)).unwrap().raster(spec())
        }
        "capacity" => {
            let assigned: Vec<u32> = (0..n as u32).map(|i| i % 7).collect();
            let capacities: Vec<u32> = (0..7u32).map(|f| 1 + f % 5).collect();
            builder.build(CapacityMeasure::new(assigned, capacities, 3)).unwrap().raster(spec())
        }
        "connectivity" => {
            let edges: Vec<(u32, u32)> = (0..n as u32)
                .flat_map(|a| [(a, (a + 1) % n as u32), (a, (a + 11) % n as u32)])
                .collect();
            builder.build(ConnectivityMeasure::from_edges(n, &edges)).unwrap().raster(spec())
        }
        other => panic!("unknown measure key {other}"),
    };
    hash_raster(&raster)
}

const MEASURES: [&str; 4] = ["count", "weighted", "capacity", "connectivity"];

/// The checked-in golden hashes: (measure, metric, fnv1a over pixel
/// bits of the 64×64 render). See the module docs for the regen path.
const GOLDEN: &[(&str, &str, u64)] = &[
    ("count", "L1", 0x13095bbc3dc7f47f),
    ("count", "L2", 0x043b3634d3b7fc2f),
    ("count", "Linf", 0x2f8e0bfc2f363cfb),
    ("weighted", "L1", 0x274047d20e4b573b),
    ("weighted", "L2", 0x020344a985dc1515),
    ("weighted", "Linf", 0x38ed0ea51210017f),
    ("capacity", "L1", 0x51b32df263b2f33c),
    ("capacity", "L2", 0xc1b2137aa837c773),
    ("capacity", "Linf", 0x90204f28b06b62dc),
    ("connectivity", "L1", 0x52b525f382081261),
    ("connectivity", "L2", 0xd2be0053d946d520),
    ("connectivity", "Linf", 0xa6ccf79ca6ea9cdf),
];

#[test]
fn golden_hashes_are_stable() {
    for measure in MEASURES {
        for metric in Metric::ALL {
            let got = render_hash(measure, metric);
            let expect = GOLDEN
                .iter()
                .find(|(m, k, _)| *m == measure && *k == metric_name(metric))
                .unwrap_or_else(|| panic!("no golden entry for {measure}/{metric:?}"))
                .2;
            assert_eq!(
                got,
                expect,
                "golden raster changed for {measure}/{}: got {got:#018x}. If this is an \
                 intentional output change, regenerate the table with `cargo test --test \
                 golden_rasters -- --ignored --nocapture` (see module docs).",
                metric_name(metric)
            );
        }
    }
}

/// Prints the golden table for regeneration (see module docs).
#[test]
#[ignore = "regeneration helper, not a check"]
fn regen_golden_hashes() {
    for measure in MEASURES {
        for metric in Metric::ALL {
            let hash = render_hash(measure, metric);
            println!("    (\"{measure}\", \"{}\", {hash:#018x}),", metric_name(metric));
        }
    }
}
