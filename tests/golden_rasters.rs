//! Golden-raster snapshot tests: small rendered grids for every
//! measure × metric combination are hashed into checked-in constants,
//! so a future raster refactor cannot silently change output.
//!
//! Everything here is deterministic and platform-independent: the
//! instance comes from a fixed LCG, all arithmetic is IEEE f64 with
//! correctly rounded ops (`sqrt` included), weights are dyadic so
//! sums are exact in any order, and the scanline renderer is
//! bit-identical across band counts (`tests/scanline_matches_oracle`),
//! so core-count differences cannot move a bit.
//!
//! ## Regenerating
//!
//! After an *intentional* output change, print the new table with
//!
//! ```text
//! cargo test --test golden_rasters -- --ignored --nocapture
//! ```
//!
//! and replace the `GOLDEN` constant below with the printed rows —
//! after convincing yourself the change is meant to alter pixels
//! (compare against the per-pixel oracle first).

use rnn_heatmap::prelude::*;
use rnn_heatmap::HeatMapBuilder;
use rnnhm_core::arrangement::fnv1a_words;

/// 60 clients + 7 facilities from a fixed LCG on [0, 10]².
fn instance() -> (Vec<Point>, Vec<Point>) {
    let mut state = 0x5eed_cafe_u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64) * 10.0
    };
    let clients = (0..60).map(|_| Point::new(next(), next())).collect();
    let facilities = (0..7).map(|_| Point::new(next(), next())).collect();
    (clients, facilities)
}

fn spec() -> GridSpec {
    GridSpec::new(64, 64, Rect::new(-1.0, 11.0, -1.0, 11.0))
}

fn hash_raster(r: &HeatRaster) -> u64 {
    fnv1a_words(r.values().iter().map(|v| v.to_bits()))
}

fn metric_name(m: Metric) -> &'static str {
    match m {
        Metric::L1 => "L1",
        Metric::L2 => "L2",
        Metric::Linf => "Linf",
    }
}

/// Renders one measure/metric combo at RkNN depth `k` and returns its
/// hash.
fn render_hash_k(measure_key: &str, metric: Metric, k: usize) -> u64 {
    let (clients, facilities) = instance();
    let n = clients.len();
    let builder = HeatMapBuilder::bichromatic(clients, facilities).metric(metric).k(k);
    let raster = match measure_key {
        "count" => builder.build(CountMeasure).unwrap().raster(spec()),
        "weighted" => {
            let weights: Vec<f64> = (0..n).map(|i| (i % 9) as f64 * 0.25).collect();
            builder.build(WeightedMeasure::new(weights)).unwrap().raster(spec())
        }
        "capacity" => {
            let assigned: Vec<u32> = (0..n as u32).map(|i| i % 7).collect();
            let capacities: Vec<u32> = (0..7u32).map(|f| 1 + f % 5).collect();
            builder.build(CapacityMeasure::new(assigned, capacities, 3)).unwrap().raster(spec())
        }
        "connectivity" => {
            let edges: Vec<(u32, u32)> = (0..n as u32)
                .flat_map(|a| [(a, (a + 1) % n as u32), (a, (a + 11) % n as u32)])
                .collect();
            builder.build(ConnectivityMeasure::from_edges(n, &edges)).unwrap().raster(spec())
        }
        other => panic!("unknown measure key {other}"),
    };
    hash_raster(&raster)
}

/// Renders one measure/metric combo at k = 1 (the pre-RkNN path, which
/// the generalization must reproduce bit-for-bit).
fn render_hash(measure_key: &str, metric: Metric) -> u64 {
    render_hash_k(measure_key, metric, 1)
}

const MEASURES: [&str; 4] = ["count", "weighted", "capacity", "connectivity"];

/// The RkNN depths with checked-in goldens beyond the classic k = 1
/// table (the instance has 7 facilities, so both are valid).
const GOLDEN_KS: [usize; 2] = [2, 5];

/// The checked-in golden hashes: (measure, metric, fnv1a over pixel
/// bits of the 64×64 render). See the module docs for the regen path.
const GOLDEN: &[(&str, &str, u64)] = &[
    ("count", "L1", 0x13095bbc3dc7f47f),
    ("count", "L2", 0x043b3634d3b7fc2f),
    ("count", "Linf", 0x2f8e0bfc2f363cfb),
    ("weighted", "L1", 0x274047d20e4b573b),
    ("weighted", "L2", 0x020344a985dc1515),
    ("weighted", "Linf", 0x38ed0ea51210017f),
    ("capacity", "L1", 0x51b32df263b2f33c),
    ("capacity", "L2", 0xc1b2137aa837c773),
    ("capacity", "Linf", 0x90204f28b06b62dc),
    ("connectivity", "L1", 0x52b525f382081261),
    ("connectivity", "L2", 0xd2be0053d946d520),
    ("connectivity", "Linf", 0xa6ccf79ca6ea9cdf),
];

/// The k > 1 golden hashes: (k, measure, metric, hash). Regenerated the
/// same way as `GOLDEN` (the regen helper prints both tables).
const GOLDEN_K: &[(usize, &str, &str, u64)] = &[
    (2, "count", "L1", 0x25a466a24a8c5243),
    (2, "count", "L2", 0x9ede0712bf1fa8d6),
    (2, "count", "Linf", 0xca93d675a7f4c6f2),
    (2, "weighted", "L1", 0x485446ca22f42fc8),
    (2, "weighted", "L2", 0x8d2619b5d0d2c3ed),
    (2, "weighted", "Linf", 0x8c62d1bbb024dc43),
    (2, "capacity", "L1", 0x43dc32690f1b7dca),
    (2, "capacity", "L2", 0xc5c2a78efbe00113),
    (2, "capacity", "Linf", 0x947545e05072b5a5),
    (2, "connectivity", "L1", 0xb9013d0cb0aa1e27),
    (2, "connectivity", "L2", 0xcbfb93ce79bf34cf),
    (2, "connectivity", "Linf", 0xa60714d4c956a318),
    (5, "count", "L1", 0xa40d7f4444616506),
    (5, "count", "L2", 0x9d84441fca11adf7),
    (5, "count", "Linf", 0x9dcf8712ff175868),
    (5, "weighted", "L1", 0x73a99e6a0c395148),
    (5, "weighted", "L2", 0x623c23311d9139d9),
    (5, "weighted", "Linf", 0xf530eb3bc2481882),
    (5, "capacity", "L1", 0xb0742eed996e40d1),
    (5, "capacity", "L2", 0xec3c6e93a4123821),
    (5, "capacity", "Linf", 0x7617be28ae8a4041),
    (5, "connectivity", "L1", 0x539372f130823874),
    (5, "connectivity", "L2", 0x9e954555ec21be82),
    (5, "connectivity", "Linf", 0x73e4c5b19e44680f),
];

#[test]
fn golden_hashes_are_stable() {
    for measure in MEASURES {
        for metric in Metric::ALL {
            let got = render_hash(measure, metric);
            let expect = GOLDEN
                .iter()
                .find(|(m, k, _)| *m == measure && *k == metric_name(metric))
                .unwrap_or_else(|| panic!("no golden entry for {measure}/{metric:?}"))
                .2;
            assert_eq!(
                got,
                expect,
                "golden raster changed for {measure}/{}: got {got:#018x}. If this is an \
                 intentional output change, regenerate the table with `cargo test --test \
                 golden_rasters -- --ignored --nocapture` (see module docs).",
                metric_name(metric)
            );
        }
    }
}

#[test]
fn golden_hashes_are_stable_at_higher_k() {
    for &k in &GOLDEN_KS {
        for measure in MEASURES {
            for metric in Metric::ALL {
                let got = render_hash_k(measure, metric, k);
                let expect = GOLDEN_K
                    .iter()
                    .find(|(gk, m, mk, _)| *gk == k && *m == measure && *mk == metric_name(metric))
                    .unwrap_or_else(|| panic!("no golden entry for k={k}/{measure}/{metric:?}"))
                    .3;
                assert_eq!(
                    got,
                    expect,
                    "golden raster changed for k={k}/{measure}/{}: got {got:#018x}. If this is \
                     an intentional output change, regenerate with `cargo test --test \
                     golden_rasters -- --ignored --nocapture` (see module docs).",
                    metric_name(metric)
                );
            }
        }
    }
}

/// Hashes the top-3 placement answer — influence, representative
/// point, RNN set, and input-space bbox, all at the bit level — for
/// the count measure on the shared instance.
fn placement_hash(metric: Metric, k: usize) -> u64 {
    let (clients, facilities) = instance();
    let snap = ArrangementSnapshot::build_k(clients, facilities, metric, Mode::Bichromatic, k)
        .expect("buildable instance");
    let top = PlacementQuery::new(&snap, &CountMeasure).top_placements(3);
    fnv1a_words(top.iter().flat_map(|p| {
        let mut words = vec![
            p.influence.to_bits(),
            p.point.x.to_bits(),
            p.point.y.to_bits(),
            p.bbox.x_lo.to_bits(),
            p.bbox.x_hi.to_bits(),
            p.bbox.y_lo.to_bits(),
            p.bbox.y_hi.to_bits(),
            p.rnn.len() as u64,
        ];
        words.extend(p.rnn.iter().map(|&c| c as u64));
        words
    }))
}

/// Golden top-3 placements: (k, metric, fnv1a over the answer bits).
/// Regenerated alongside the raster tables (the helper prints all
/// three).
const GOLDEN_PLACEMENT: &[(usize, &str, u64)] = &[
    (1, "L1", 0x3b0ef78ec44e4270),
    (1, "L2", 0x1b93f1dbbc5d0a68),
    (1, "Linf", 0x7737893305b883bf),
    (2, "L1", 0xafdef8bc95b998c2),
    (2, "L2", 0x79dcb39ec5a3d209),
    (2, "Linf", 0xc0aa06c28f4e4755),
];

#[test]
fn golden_placements_are_stable() {
    for &(k, name, expect) in GOLDEN_PLACEMENT {
        let metric = Metric::ALL.into_iter().find(|m| metric_name(*m) == name).unwrap();
        let got = placement_hash(metric, k);
        assert_eq!(
            got, expect,
            "golden placement changed for k={k}/{name}: got {got:#018x}. If this is an \
             intentional output change, regenerate with `cargo test --test golden_rasters -- \
             --ignored --nocapture` (see module docs)."
        );
    }
}

#[test]
fn k_goldens_differ_from_k1() {
    // Sanity on the new table: the RkNN circles genuinely change the
    // rendered field (the instance has no coincident facilities, so
    // every k-th NN distance strictly exceeds the 1st).
    for &k in &GOLDEN_KS {
        assert_ne!(
            render_hash_k("count", Metric::Linf, k),
            render_hash("count", Metric::Linf),
            "k = {k} raster unexpectedly equals the k = 1 raster"
        );
    }
}

/// Prints both golden tables for regeneration (see module docs).
#[test]
#[ignore = "regeneration helper, not a check"]
fn regen_golden_hashes() {
    for measure in MEASURES {
        for metric in Metric::ALL {
            let hash = render_hash(measure, metric);
            println!("    (\"{measure}\", \"{}\", {hash:#018x}),", metric_name(metric));
        }
    }
    println!("--- GOLDEN_K ---");
    for &k in &GOLDEN_KS {
        for measure in MEASURES {
            for metric in Metric::ALL {
                let hash = render_hash_k(measure, metric, k);
                println!("    ({k}, \"{measure}\", \"{}\", {hash:#018x}),", metric_name(metric));
            }
        }
    }
    println!("--- GOLDEN_PLACEMENT ---");
    for k in [1usize, 2] {
        for metric in Metric::ALL {
            let hash = placement_hash(metric, k);
            println!("    ({k}, \"{}\", {hash:#018x}),", metric_name(metric));
        }
    }
}
