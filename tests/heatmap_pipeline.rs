//! Rendering pipeline integration: fast vs exact rasters on real
//! NN-circle arrangements, the rotated L1 path, determinism of PPM
//! output, and raster ops.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnn_heatmap::prelude::*;
use rnnhm_core::oracle::rnn_at_points;
use rnnhm_heatmap::ops::{diff, max_pixel};
use rnnhm_heatmap::render::ascii_art;
use rnnhm_heatmap::write_pgm;

fn workload(seed: u64) -> (Vec<Point>, Vec<Point>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pt = || Point::new(rng.random::<f64>() * 10.0, rng.random::<f64>() * 10.0);
    ((0..80).map(|_| pt()).collect(), (0..8).map(|_| pt()).collect())
}

#[test]
fn fast_and_exact_rasters_agree_on_nn_circles() {
    let (clients, facilities) = workload(1);
    let arr =
        build_square_arrangement(&clients, &facilities, Metric::Linf, Mode::Bichromatic).unwrap();
    let spec = GridSpec::new(80, 60, Rect::new(0.0, 10.0, 0.0, 10.0));
    let exact = rasterize_squares(&arr, &CountMeasure, spec);
    let fast = rasterize_count_squares_fast(&arr, spec);
    for row in 0..spec.height {
        for col in 0..spec.width {
            assert_eq!(exact.get(col, row), fast.get(col, row), "pixel ({col},{row})");
        }
    }
}

#[test]
fn l1_raster_answers_in_input_space() {
    // The L1 arrangement lives in a rotated frame; the raster API takes
    // input-space extents and must agree with the direct L1 definition
    // at every pixel center.
    let (clients, facilities) = workload(2);
    let arr =
        build_square_arrangement(&clients, &facilities, Metric::L1, Mode::Bichromatic).unwrap();
    let spec = GridSpec::new(40, 40, Rect::new(0.0, 10.0, 0.0, 10.0));
    let raster = rasterize_squares(&arr, &CountMeasure, spec);
    for row in 0..spec.height {
        for col in 0..spec.width {
            let q = spec.pixel_center(col, row);
            let expect = rnn_at_points(&clients, &facilities, Metric::L1, q).len() as f64;
            assert_eq!(raster.get(col, row), expect, "pixel center {q:?}");
        }
    }
}

#[test]
fn renders_are_deterministic() {
    let (clients, facilities) = workload(3);
    let arr =
        build_square_arrangement(&clients, &facilities, Metric::Linf, Mode::Bichromatic).unwrap();
    let spec = GridSpec::new(64, 64, Rect::new(0.0, 10.0, 0.0, 10.0));
    let raster = rasterize_count_squares_fast(&arr, spec);
    let mut ppm1 = Vec::new();
    let mut ppm2 = Vec::new();
    rnnhm_heatmap::write_ppm(&mut ppm1, &raster, ColorRamp::Heat).unwrap();
    rnnhm_heatmap::write_ppm(&mut ppm2, &raster, ColorRamp::Heat).unwrap();
    assert_eq!(ppm1, ppm2);
    assert!(ppm1.starts_with(b"P6\n64 64\n255\n"));
    let mut pgm = Vec::new();
    write_pgm(&mut pgm, &raster).unwrap();
    assert_eq!(pgm.len(), "P5\n64 64\n255\n".len() + 64 * 64);
    let art = ascii_art(&raster);
    assert_eq!(art.lines().count(), 64);
}

#[test]
fn placing_a_facility_at_the_peak_cools_the_map() {
    // Exploration loop: find the hottest pixel, open a facility there,
    // re-render — the new map's value at that spot must drop to zero
    // (the new facility sits on it, so no client's NN-circle contains it
    // strictly… its own clients now have zero-radius circles).
    let (clients, mut facilities) = workload(4);
    let arr =
        build_square_arrangement(&clients, &facilities, Metric::Linf, Mode::Bichromatic).unwrap();
    let spec = GridSpec::new(50, 50, Rect::new(0.0, 10.0, 0.0, 10.0));
    let before = rasterize_squares(&arr, &CountMeasure, spec);
    let (pc, pr, peak) = max_pixel(&before);
    assert!(peak > 0.0, "some influence must exist");

    let new_facility = spec.pixel_center(pc, pr);
    facilities.push(new_facility);
    let arr2 =
        build_square_arrangement(&clients, &facilities, Metric::Linf, Mode::Bichromatic).unwrap();
    let after = rasterize_squares(&arr2, &CountMeasure, spec);
    // Under the strict RNN definition no client is now *strictly* closer
    // to the peak than to its facility set (the new facility sits there).
    assert!(
        rnn_at_points(&clients, &facilities, Metric::Linf, new_facility).is_empty(),
        "no client strictly prefers the occupied peak"
    );
    // The raster uses closed containment, where clients captured by the
    // new facility keep the peak on their (shrunken) circle boundary —
    // the paper's `≤` tie rule — so the pixel can stay warm but must not
    // heat up.
    assert!(after.get(pc, pr) <= peak);

    // The difference map is non-negative everywhere: adding a facility
    // can only shrink NN-circles, never grow them.
    let d = diff(&before, &after);
    for row in 0..spec.height {
        for col in 0..spec.width {
            assert!(d.get(col, row) >= 0.0, "influence grew at ({col},{row})");
        }
    }
}

#[test]
fn window_and_raster_agree_on_hotspots() {
    // The windowed CREST sweep and the rasterizer must see the same
    // maximum influence inside a viewport (raster at pixel granularity).
    let (clients, facilities) = workload(5);
    let arr =
        build_square_arrangement(&clients, &facilities, Metric::Linf, Mode::Bichromatic).unwrap();
    let window = Rect::new(2.0, 8.0, 2.0, 8.0);
    let mut max_sink = MaxSink::default();
    crest_window(&arr, window, &CountMeasure, &mut max_sink);
    let best = max_sink.best.expect("non-empty window").influence;

    let spec = GridSpec::new(240, 240, window);
    let raster = rasterize_squares(&arr, &CountMeasure, spec);
    let (_, _, raster_peak) = max_pixel(&raster);
    // The raster samples pixel centers, so it can only miss very thin
    // regions; at this resolution the peaks must agree exactly.
    assert_eq!(best, raster_peak);
}
