//! Bitwise-undo guarantees through the placement path (ISSUE 7
//! satellite): tentative placement work — candidate scoring via
//! `evaluate_insert`, `best_relocation`'s tentative removal, and a
//! full greedy run on a forked session — must leave the base
//! arrangement *bit-identical*: fingerprint, live facility list,
//! NN-circle geometry bits, the `top_k` region list, and served
//! viewport pixel bytes. Checked for all three metrics at k = 2.

use rnn_heatmap::prelude::*;
use rnn_heatmap::HeatMapBuilder;
use rnnhm_core::arrangement::fnv1a_words;
use rnnhm_core::edit::ArrangementRef;

/// 120 clients + 10 facilities from a fixed LCG on [0, 10]².
fn instance() -> (Vec<Point>, Vec<Point>) {
    let mut state = 0xfeed_f00d_u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64) * 10.0
    };
    let clients = (0..120).map(|_| Point::new(next(), next())).collect();
    let facilities = (0..10).map(|_| Point::new(next(), next())).collect();
    (clients, facilities)
}

/// Every observable bit of a session, folded into hashes plus the raw
/// facility and top-k lists for readable failure output.
struct Observed {
    fingerprint: u64,
    facilities: Vec<(u32, u64, u64)>,
    geometry_hash: u64,
    top: Vec<(Vec<u32>, u64)>,
    viewport_hash: u64,
}

fn observe(session: &Session<CountMeasure>) -> Observed {
    let geometry_hash = match session.snapshot().arrangement() {
        ArrangementRef::Square(a) => {
            fnv1a_words(a.squares.iter().zip(&a.owners).flat_map(|(s, &o)| {
                [s.x_lo.to_bits(), s.x_hi.to_bits(), s.y_lo.to_bits(), s.y_hi.to_bits(), o as u64]
            }))
        }
        ArrangementRef::Disk(d) => fnv1a_words(
            d.disks
                .iter()
                .zip(&d.owners)
                .flat_map(|(c, &o)| [c.c.x.to_bits(), c.c.y.to_bits(), c.r.to_bits(), o as u64]),
        ),
    };
    let viewport = session.viewport(Rect::new(0.0, 10.0, 0.0, 10.0), 48, 48);
    Observed {
        fingerprint: session.fingerprint(),
        facilities: session
            .facilities()
            .into_iter()
            .map(|(id, p)| (id, p.x.to_bits(), p.y.to_bits()))
            .collect(),
        geometry_hash,
        top: session
            .top_k(8)
            .into_iter()
            .map(|r| {
                let mut s = r.rnn;
                s.sort_unstable();
                (s, r.influence.to_bits())
            })
            .collect(),
        viewport_hash: fnv1a_words(viewport.values().iter().map(|v| v.to_bits())),
    }
}

fn assert_unchanged(before: &Observed, after: &Observed, what: &str) {
    assert_eq!(before.fingerprint, after.fingerprint, "{what}: fingerprint");
    assert_eq!(before.facilities, after.facilities, "{what}: facility list");
    assert_eq!(before.geometry_hash, after.geometry_hash, "{what}: NN-circle geometry bits");
    assert_eq!(before.top, after.top, "{what}: top_k list");
    assert_eq!(before.viewport_hash, after.viewport_hash, "{what}: served viewport bytes");
}

#[test]
fn tentative_placement_work_is_a_bitwise_undo() {
    for metric in Metric::ALL {
        let (clients, facilities) = instance();
        let engine = HeatMapBuilder::bichromatic(clients, facilities)
            .metric(metric)
            .k(2)
            .build_engine(CountMeasure)
            .expect("non-empty instance");
        let session = engine.session();
        let before = observe(&session);

        // Candidate scoring: tentative inserts, dropped immediately.
        {
            let query = PlacementQuery::new(session.snapshot(), &CountMeasure);
            for q in [Point::new(2.5, 2.5), Point::new(5.0, 7.5), Point::new(9.0, 1.0)] {
                let eval = query.evaluate_insert(q).expect("finite candidate");
                assert!(eval.influence >= 0.0);
                drop(eval);
            }

            // Relocation: a tentative removal happens inside; the
            // base snapshot must not observe it.
            let rel = query.best_relocation(0).expect("10 > k facilities");
            assert!(rel.best.influence.is_finite());

            // Full placement ranking exercises the cached stab tree
            // and the pruned evaluation path.
            let top = query.top_placements(5);
            assert!(!top.is_empty());
        }
        assert_unchanged(&before, &observe(&session), &format!("{metric:?} read path"));

        // Greedy on a fork commits real inserts — to the fork only.
        let mut fork = session.fork();
        let steps =
            fork.greedy_place(3, &PlacementConstraints::none()).expect("placeable instance");
        assert_eq!(steps.len(), 3);
        assert_eq!(fork.n_facilities(), session.n_facilities() + 3);
        assert_ne!(fork.fingerprint(), session.fingerprint());
        drop(fork);
        assert_unchanged(&before, &observe(&session), &format!("{metric:?} greedy fork"));

        // A fresh session over the same engine sees the same bits.
        assert_unchanged(&before, &observe(&engine.session()), &format!("{metric:?} re-open"));
    }
}
