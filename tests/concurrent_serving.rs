//! Threaded stress test of the snapshot-isolated exploration engine
//! (ISSUE 5): reader threads hammer `viewport` / `influence_at` /
//! `top_k` on committed snapshots while an editor thread commits a
//! script of edits on a fork of the same dataset.
//!
//! The invariant under test: **every served frame is bit-identical to
//! a one-shot render of *some* committed snapshot** — concurrency,
//! the shared sharded cache, single-flight, and edit propagation never
//! produce a torn or cross-contaminated frame. Each reader pins the
//! exact snapshot it rendered from (an `Arc` clone), so the check is
//! exact, not probabilistic.

use std::sync::{Arc, Mutex};

use rnn_heatmap::prelude::*;
use rnn_heatmap::{ExplorationEngine, HeatMapBuilder, Session};

/// Deterministic uniform points on the span (the library's own
/// generator — `rnnhm_data::gen::uniform` — reused instead of a
/// hand-rolled PRNG).
fn pseudo_points(n: usize, seed: u64, span: f64) -> Vec<Point> {
    rnn_heatmap::data::uniform(n, Rect::new(0.0, span, 0.0, span), seed)
}

/// The engine, its session handles, and the tile cache must all be
/// shareable across threads — the serving contract, checked at
/// compile time.
#[test]
fn engine_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ExplorationEngine<CountMeasure>>();
    assert_send_sync::<Session<CountMeasure>>();
    assert_send_sync::<TileCache>();
    assert_send_sync::<Arc<ArrangementSnapshot>>();
    assert_send_sync::<ExplorationEngine<WeightedMeasure>>();
    assert_send_sync::<Session<WeightedMeasure>>();
}

#[test]
fn concurrent_edits_never_tear_served_frames() {
    const EDITS: usize = 14;
    const READERS: usize = 3;
    const FRAMES_PER_READER: usize = 20;

    // Keep the NN-circles small relative to the world (many
    // facilities): region *counts* grow with circle overlap density,
    // and the readers run full region sweeps on fresh sessions.
    let clients = pseudo_points(800, 11, 1.0);
    let facilities = pseudo_points(80, 13, 1.0);
    let engine = HeatMapBuilder::bichromatic(clients, facilities)
        .metric(Metric::Linf)
        .tile_px(16)
        .build_engine(CountMeasure)
        .expect("non-empty input");

    // Committed snapshots, strongly held so readers can time-travel
    // to any version; index 0 is the dataset root.
    let published: Arc<Mutex<Vec<Arc<ArrangementSnapshot>>>> =
        Arc::new(Mutex::new(vec![engine.root_snapshot().clone()]));

    // Viewports the readers rotate through (overlapping, straddling
    // tile boundaries, one zoomed in).
    let rects = [
        Rect::new(0.05, 0.55, 0.05, 0.55),
        Rect::new(0.3, 0.9, 0.2, 0.8),
        Rect::new(0.42, 0.58, 0.42, 0.58),
        Rect::new(0.0, 1.0, 0.0, 1.0),
    ];

    std::thread::scope(|scope| {
        // Editor: commits a script of adds/moves/removes on a fork,
        // publishing every committed snapshot.
        {
            let published = published.clone();
            let mut editor = engine.session();
            scope.spawn(move || {
                let mut added: Vec<u32> = Vec::new();
                let sites = pseudo_points(EDITS, 17, 1.0);
                for (step, &site) in sites.iter().enumerate() {
                    match step % 3 {
                        0 => {
                            let (id, _) = editor.add_facility(site).expect("bichromatic");
                            added.push(id);
                        }
                        1 => {
                            if let Some(&id) = added.last() {
                                editor.move_facility(id, site).expect("live id");
                            }
                        }
                        _ => {
                            if added.len() > 1 {
                                let id = added.remove(0);
                                editor.remove_facility(id).expect("live id");
                            }
                        }
                    }
                    // Exercise the editor's own read paths mid-script.
                    let _ = editor.influence_at(site);
                    published.lock().unwrap().push(editor.snapshot().clone());
                    // Let readers interleave with a fresh version.
                    std::thread::yield_now();
                }
            });
        }

        // Readers: render whatever version is current (or an older
        // one), and verify bit-identity against a one-shot render of
        // that exact snapshot.
        for reader in 0..READERS {
            let published = published.clone();
            let engine = &engine;
            scope.spawn(move || {
                for i in 0..FRAMES_PER_READER {
                    let snap = {
                        let list = published.lock().unwrap();
                        // Mostly the newest version, sometimes an old
                        // one (time travel must serve stale snapshots
                        // exactly, not approximately).
                        let idx =
                            if i % 5 == 0 { (reader * 7 + i) % list.len() } else { list.len() - 1 };
                        list[idx].clone()
                    };
                    let session = engine.session_at(snap.clone());
                    let rect = rects[(reader + i) % rects.len()];
                    let frame = session.viewport(rect, 48, 48);
                    let one_shot = session.raster(frame.spec);
                    for (a, b) in frame.values().iter().zip(one_shot.values()) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "reader {reader} frame {i}: served frame diverged from its \
                             snapshot's one-shot render (generation {})",
                            snap.generation()
                        );
                    }
                    // The query paths must agree with the snapshot too.
                    let (rnn, influence) = session.influence_at(rect.center());
                    assert!(influence >= 0.0);
                    assert!(rnn.len() <= 800);
                    // Region sweeps are the expensive read path; a few
                    // per reader suffice to race them against edits.
                    if i % 8 == 0 {
                        let top = session.top_k(3);
                        assert!(!top.is_empty(), "a non-empty arrangement has regions");
                        let best = &top[0];
                        let (_, at_best) = session.influence_at(session.region_center(best));
                        // The witness scores at least... exactly its label
                        // (skip degenerate zero-area strips).
                        if best.rect.width() > 1e-9 && best.rect.height() > 1e-9 {
                            assert_eq!(at_best, best.influence, "reader {reader} frame {i}");
                        }
                    }
                }
            });
        }
    });

    // The editor committed every edit; the shared cache served
    // overlapping reads across versions.
    let stats = engine.cache_stats();
    assert!(stats.hits > 0, "concurrent readers must share warm tiles: {stats:?}");
    let published = published.lock().unwrap();
    assert!(published.len() > EDITS / 2, "the editor published its commits");
    // All published versions remain alive and addressable (skipped
    // edit steps publish the same snapshot twice — dedup by pointer).
    let mut ptrs: Vec<*const ArrangementSnapshot> = published.iter().map(Arc::as_ptr).collect();
    ptrs.sort();
    ptrs.dedup();
    assert!(engine.snapshots().len() >= ptrs.len());
}

#[test]
fn forked_branches_stay_isolated_under_concurrent_edits() {
    // Two sessions fork the same snapshot and edit divergently from
    // two threads; afterwards each branch's frame must match a
    // single-user map built from that branch's facility set.
    let clients = pseudo_points(1_200, 23, 1.0);
    let facilities = pseudo_points(24, 29, 1.0);
    let engine = HeatMapBuilder::bichromatic(clients.clone(), facilities)
        .metric(Metric::L2)
        .tile_px(16)
        .build_engine(CountMeasure)
        .expect("non-empty input");
    let rect = Rect::new(0.1, 0.9, 0.1, 0.9);
    // Warm the ancestor tiles so both branches start from a shared
    // warm cache.
    let root_session = engine.session();
    let _ = root_session.viewport(rect, 64, 64);

    let sites_a = pseudo_points(5, 31, 1.0);
    let sites_b = pseudo_points(5, 37, 1.0);
    let (frame_a, facs_a, frame_b, facs_b) = std::thread::scope(|scope| {
        let spawn_branch = |sites: Vec<Point>| {
            let mut session = root_session.fork();
            scope.spawn(move || {
                for &site in &sites {
                    session.add_facility(site).expect("bichromatic");
                    let _ = session.viewport(rect, 64, 64);
                }
                let frame = session.viewport(rect, 64, 64);
                let facs: Vec<Point> = session.facilities().into_iter().map(|(_, p)| p).collect();
                (frame, facs)
            })
        };
        let a = spawn_branch(sites_a.clone());
        let b = spawn_branch(sites_b.clone());
        let (frame_a, facs_a) = a.join().expect("branch a");
        let (frame_b, facs_b) = b.join().expect("branch b");
        (frame_a, facs_a, frame_b, facs_b)
    });

    for (frame, facs) in [(&frame_a, facs_a), (&frame_b, facs_b)] {
        let rebuilt = HeatMapBuilder::bichromatic(clients.clone(), facs)
            .metric(Metric::L2)
            .build(CountMeasure)
            .expect("non-empty");
        let one_shot = rebuilt.raster(frame.spec);
        for (a, b) in frame.values().iter().zip(one_shot.values()) {
            assert_eq!(a.to_bits(), b.to_bits(), "branch frame diverged from a clean rebuild");
        }
    }
    // The branches really diverged.
    assert_ne!(frame_a.values(), frame_b.values());
    // The root session still serves the unedited dataset, fully warm.
    let misses_before = engine.cache_stats().misses;
    let root_frame = root_session.viewport(rect, 64, 64);
    assert_eq!(
        engine.cache_stats().misses,
        misses_before,
        "the ancestor snapshot's tiles survive both branches' edits"
    );
    let root_one_shot = root_session.raster(root_frame.spec);
    for (a, b) in root_frame.values().iter().zip(root_one_shot.values()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
