//! Property test: the scanline rasterizer is bit-identical to the
//! per-pixel-stab oracle (ISSUE 1 acceptance).
//!
//! Random square and disk arrangements — including degenerate shapes
//! (zero-height squares, pixel-sized disks, shapes off the grid, rows
//! with zero active spans) — are rendered by both paths under all four
//! paper measures plus the [`ExactFallback`] adapter, and every pixel is
//! compared with `f64::to_bits` equality. Weights are dyadic rationals,
//! so weighted sums are exact in any evaluation order and bit-identity
//! is the right contract for every measure (see
//! [`rnnhm_core::measure::IncrementalMeasure`]'s documentation).

use proptest::prelude::*;
use rnn_heatmap::prelude::*;
use rnnhm_core::arrangement::CoordSpace;
use rnnhm_core::measure::ExactFallback;
use rnnhm_geom::Circle;
use rnnhm_heatmap::scanline::{rasterize_disks_scanline_bands, rasterize_squares_scanline_bands};

fn assert_bit_identical(scan: &HeatRaster, oracle: &HeatRaster, what: &str) {
    for row in 0..scan.spec.height {
        for col in 0..scan.spec.width {
            assert!(
                scan.get(col, row).to_bits() == oracle.get(col, row).to_bits(),
                "{what}: pixel ({col},{row}): scanline {} vs oracle {}",
                scan.get(col, row),
                oracle.get(col, row)
            );
        }
    }
}

/// Strategy: squares on a coarse quarter-integer grid over [0, 10]²,
/// with sizes down to zero — degenerate alignments (edges exactly on
/// pixel centers, zero-area squares, shared boundaries) are *common*.
fn squares_strategy(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Rect>> {
    prop::collection::vec((0u32..44, 0u32..44, 0u32..16, 0u32..16), n).prop_map(|v| {
        v.into_iter()
            .map(|(x, y, w, h)| {
                let (x, y) = (x as f64 / 4.0 - 0.5, y as f64 / 4.0 - 0.5);
                Rect::new(x, x + w as f64 / 4.0, y, y + h as f64 / 4.0)
            })
            .collect()
    })
}

/// Strategy: disks on the same coarse grid, radius 0.25–2.25.
fn disks_strategy(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Circle>> {
    prop::collection::vec((0u32..44, 0u32..44, 1u32..9), n).prop_map(|v| {
        v.into_iter()
            .map(|(x, y, r)| {
                Circle::new(Point::new(x as f64 / 4.0 - 0.5, y as f64 / 4.0 - 0.5), r as f64 / 4.0)
            })
            .collect()
    })
}

fn square_arrangement_of(squares: Vec<Rect>, space: CoordSpace) -> SquareArrangement {
    let owners = (0..squares.len() as u32).collect();
    let n = squares.len();
    SquareArrangement { squares, owners, space, n_clients: n.max(1), dropped: 0, k: 1 }
}

/// All-measure comparison for one square arrangement.
fn check_squares(arr: &SquareArrangement, spec: GridSpec, bands: usize) {
    let n = arr.n_clients;
    let count = CountMeasure;
    let weighted = WeightedMeasure::new((0..n).map(|i| (i % 11) as f64 * 0.125).collect());
    let capacity = CapacityMeasure::new((0..n as u32).map(|i| i % 3).collect(), vec![2, 1, 3], 2);
    let edges: Vec<(u32, u32)> = if n >= 2 {
        (0..n as u32).map(|a| (a, (a + 1) % n as u32)).filter(|(a, b)| a != b).collect()
    } else {
        Vec::new()
    };
    let connectivity = ConnectivityMeasure::from_edges(n, &edges);

    assert_bit_identical(
        &rasterize_squares_scanline_bands(arr, &count, spec, bands),
        &rasterize_squares_oracle(arr, &count, spec),
        "count",
    );
    assert_bit_identical(
        &rasterize_squares_scanline_bands(arr, &weighted, spec, bands),
        &rasterize_squares_oracle(arr, &weighted, spec),
        "weighted",
    );
    assert_bit_identical(
        &rasterize_squares_scanline_bands(arr, &capacity, spec, bands),
        &rasterize_squares_oracle(arr, &capacity, spec),
        "capacity",
    );
    assert_bit_identical(
        &rasterize_squares_scanline_bands(arr, &connectivity, spec, bands),
        &rasterize_squares_oracle(arr, &connectivity, spec),
        "connectivity",
    );
    assert_bit_identical(
        &rasterize_squares_scanline_bands(arr, &ExactFallback(count), spec, bands),
        &rasterize_squares_oracle(arr, &ExactFallback(count), spec),
        "exact-fallback",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn squares_bit_identical_all_measures(
        squares in squares_strategy(0..40),
        bands in 1usize..7,
    ) {
        let arr = square_arrangement_of(squares, CoordSpace::Identity);
        let spec = GridSpec::new(57, 43, Rect::new(0.0, 10.0, 0.0, 10.0));
        check_squares(&arr, spec, bands);
    }

    #[test]
    fn rotated_squares_bit_identical(
        squares in squares_strategy(0..30),
        bands in 1usize..5,
    ) {
        // Rotated-frame squares exercise the diagonal-line span path.
        let arr = square_arrangement_of(squares, CoordSpace::Rotated45);
        let spec = GridSpec::new(41, 41, Rect::new(-8.0, 8.0, -8.0, 8.0));
        let count = CountMeasure;
        let scan = rasterize_squares_scanline_bands(&arr, &count, spec, bands);
        let oracle = rasterize_squares_oracle(&arr, &count, spec);
        assert_bit_identical(&scan, &oracle, "rotated count");
    }

    #[test]
    fn disks_bit_identical(
        disks in disks_strategy(0..35),
        bands in 1usize..6,
    ) {
        let owners = (0..disks.len() as u32).collect();
        let n = disks.len().max(1);
        let arr = DiskArrangement { disks, owners, n_clients: n, dropped: 0, k: 1 };
        let spec = GridSpec::new(49, 61, Rect::new(0.0, 10.0, 0.0, 10.0));
        let count = CountMeasure;
        let weighted =
            WeightedMeasure::new((0..n).map(|i| (i % 7) as f64 * 0.5).collect());
        assert_bit_identical(
            &rasterize_disks_scanline_bands(&arr, &count, spec, bands),
            &rasterize_disks_oracle(&arr, &count, spec),
            "disk count",
        );
        assert_bit_identical(
            &rasterize_disks_scanline_bands(&arr, &weighted, spec, bands),
            &rasterize_disks_oracle(&arr, &weighted, spec),
            "disk weighted",
        );
    }

    #[test]
    fn real_nn_circle_arrangements_bit_identical(
        pts in prop::collection::vec((0u32..40, 0u32..40), 2..60),
        n_fac in 1usize..6,
        bands in 1usize..5,
    ) {
        // End-to-end: NN-circles from actual client/facility sets, in
        // both square metrics, including empty degenerate rows above
        // and below the populated area.
        let points: Vec<Point> =
            pts.iter().map(|&(x, y)| Point::new(x as f64 / 4.0, y as f64 / 4.0)).collect();
        let n_fac = n_fac.min(points.len() - 1).max(1);
        let (clients, facilities) = points.split_at(points.len() - n_fac);
        for metric in [Metric::Linf, Metric::L1] {
            if let Ok(arr) =
                build_square_arrangement(clients, facilities, metric, Mode::Bichromatic)
            {
                let spec = GridSpec::new(37, 53, Rect::new(-2.0, 12.0, -2.0, 12.0));
                let count = CountMeasure;
                let scan = rasterize_squares_scanline_bands(&arr, &count, spec, bands);
                let oracle = rasterize_squares_oracle(&arr, &count, spec);
                assert_bit_identical(&scan, &oracle, "nn-circles");
            }
        }
    }
}

#[test]
fn degenerate_rows_with_zero_active_spans() {
    // Shapes confined to a narrow horizontal stripe: most raster rows
    // have *no* active spans and must still fill the empty-set value —
    // including a measure whose empty-set influence is non-zero.
    let squares = vec![
        Rect::new(1.0, 3.0, 5.0, 5.2),
        Rect::new(2.0, 6.0, 5.1, 5.3),
        Rect::new(7.0, 7.4, 5.0, 5.0), // zero height
    ];
    let arr = square_arrangement_of(squares, CoordSpace::Identity);
    let spec = GridSpec::new(64, 64, Rect::new(0.0, 10.0, 0.0, 10.0));
    let capacity = CapacityMeasure::new(vec![0, 1, 0], vec![1, 2], 5);
    for bands in [1, 3, 64] {
        let scan = rasterize_squares_scanline_bands(&arr, &capacity, spec, bands);
        let oracle = rasterize_squares_oracle(&arr, &capacity, spec);
        assert_bit_identical(&scan, &oracle, "degenerate rows");
    }
}

#[test]
fn everything_off_grid() {
    let squares = vec![Rect::new(100.0, 101.0, 100.0, 101.0)];
    let arr = square_arrangement_of(squares, CoordSpace::Identity);
    let spec = GridSpec::new(8, 8, Rect::new(0.0, 1.0, 0.0, 1.0));
    let scan = rasterize_squares_scanline_bands(&arr, &CountMeasure, spec, 2);
    let oracle = rasterize_squares_oracle(&arr, &CountMeasure, spec);
    assert_bit_identical(&scan, &oracle, "off grid");
    assert_eq!(scan.sum(), 0.0);
}
