//! The LoD error contract, observed through the engine facade: tiles
//! at or above the exact-zoom threshold are bit-identical to a no-LoD
//! engine's tiles, coarser tiles stay inside the closed min/max
//! envelope of the exact base pixels they summarize, and the reported
//! error bound is the measured worst case — before *and* after edits.

use rnn_heatmap::prelude::*;
use rnn_heatmap::{ExplorationEngine, HeatMapBuilder};

const TILE_PX: usize = 16;
const ZE: u8 = 2;

fn pseudo_points(n: usize, seed: u64, span: f64) -> Vec<Point> {
    rnn_heatmap::data::uniform(n, Rect::new(0.0, span, 0.0, span), seed)
}

fn build(lod: bool) -> ExplorationEngine<CountMeasure> {
    let clients = pseudo_points(350, 11, 10.0);
    let facilities = pseudo_points(45, 13, 10.0);
    let mut b =
        HeatMapBuilder::bichromatic(clients, facilities).metric(Metric::Linf).tile_px(TILE_PX);
    if lod {
        b = b.lod_exact_zoom(ZE);
    }
    b.build_engine(CountMeasure).expect("valid instance")
}

/// The exact zoom-`ZE` mosaic as one raster: `side × side` tiles of
/// `TILE_PX` px, stitched row-major with row 0 at the bottom.
fn base_mosaic(session: &Session<CountMeasure>) -> (Vec<f64>, usize) {
    let side = 1usize << ZE;
    let px = side * TILE_PX;
    let mut out = vec![0.0; px * px];
    for ty in 0..side {
        for tx in 0..side {
            let tile = session.tile(TileId { zoom: ZE, tx: tx as u32, ty: ty as u32 });
            for r in 0..TILE_PX {
                let dst = (ty * TILE_PX + r) * px + tx * TILE_PX;
                let src = r * TILE_PX;
                out[dst..dst + TILE_PX].copy_from_slice(&tile.values()[src..src + TILE_PX]);
            }
        }
    }
    (out, px)
}

/// Checks one coarse tile against the base mosaic: every pixel within
/// the closed `[min, max]` of the base block it summarizes, and the
/// reported bound covers the largest measured block spread.
fn assert_containment(
    frame: &rnn_heatmap::TileFrame,
    id: TileId,
    mosaic: &[f64],
    mosaic_px: usize,
) {
    assert!(frame.approx, "zoom {} below threshold must be approximate", id.zoom);
    let scale = 1usize << (ZE - id.zoom); // base pixels per coarse pixel side
    let mut worst = 0.0f64;
    for r in 0..TILE_PX {
        for c in 0..TILE_PX {
            let v = frame.raster.values()[r * TILE_PX + c];
            let base_c0 = (id.tx as usize * TILE_PX + c) * scale;
            let base_r0 = (id.ty as usize * TILE_PX + r) * scale;
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for br in base_r0..base_r0 + scale {
                for bc in base_c0..base_c0 + scale {
                    let b = mosaic[br * mosaic_px + bc];
                    lo = lo.min(b);
                    hi = hi.max(b);
                }
            }
            assert!(
                (lo..=hi).contains(&v),
                "coarse pixel ({c},{r}) of {id:?} = {v} escapes base envelope [{lo}, {hi}]"
            );
            worst = worst.max(hi - lo);
        }
    }
    assert!(
        frame.error_bound >= worst,
        "reported bound {} under-states measured spread {worst}",
        frame.error_bound
    );
}

#[test]
fn exact_zoom_tiles_are_bit_identical_to_a_no_lod_engine() {
    let plain = build(false);
    let lod = build(true);
    let a = plain.session();
    let b = lod.session();
    assert_eq!(b.lod_exact_zoom(), Some(ZE));
    for zoom in ZE..=(ZE + 2) {
        let side = 1u32 << zoom;
        for ty in [0, side - 1] {
            for tx in [0, side / 2] {
                let id = TileId { zoom, tx, ty };
                let exact = a.tile(id);
                let frame = b.tile_lod(id);
                assert!(!frame.approx, "{id:?} at/above threshold must be exact");
                assert_eq!(frame.error_bound, 0.0);
                assert_eq!(exact.values(), frame.raster.values(), "{id:?}");
            }
        }
    }
}

#[test]
fn coarse_tiles_stay_inside_the_base_envelope() {
    let lod = build(true);
    let s = lod.session();
    let (mosaic, px) = base_mosaic(&s);
    for zoom in 0..ZE {
        let side = 1u32 << zoom;
        for ty in 0..side {
            for tx in 0..side {
                let id = TileId { zoom, tx, ty };
                let frame = s.tile_lod(id);
                assert_containment(&frame, id, &mosaic, px);
            }
        }
    }
}

#[test]
fn coarse_viewports_are_labeled_approximate_and_bounded() {
    let lod = build(true);
    let s = lod.session();
    let world = s.tile_scheme().world();
    // A world-sized request at one tile's worth of pixels resolves to
    // zoom 0 — below the threshold.
    match s.viewport_frame(world, TILE_PX, TILE_PX) {
        ViewportFrame::Approx { raster, error_bound } => {
            assert_eq!(raster.spec.width, TILE_PX);
            assert!(error_bound.is_finite() && error_bound >= 0.0);
        }
        other => panic!("expected an approximate frame, got {}", frame_name(&other)),
    }
    // Zooming in past the threshold must fall back to the exact path
    // and match the no-LoD engine bitwise.
    let plain = build(false);
    let q = Rect::new(2.0, 4.0, 5.0, 7.0);
    match s.viewport_frame(q, 128, 128) {
        ViewportFrame::Exact(raster) => {
            assert_eq!(raster.values(), plain.session().viewport(q, 128, 128).values());
        }
        other => panic!("expected an exact frame, got {}", frame_name(&other)),
    }
}

fn frame_name(f: &ViewportFrame) -> &'static str {
    match f {
        ViewportFrame::Exact(_) => "Exact",
        ViewportFrame::Degraded(_) => "Degraded",
        ViewportFrame::Approx { .. } => "Approx",
    }
}

#[test]
fn the_contract_survives_edits() {
    let plain = build(false);
    let lod = build(true);
    let mut a = plain.session();
    let mut b = lod.session();

    // Warm the pyramid first so the edit exercises the patch path, not
    // a cold build.
    let _ = b.tile_lod(TileId { zoom: 0, tx: 0, ty: 0 });

    let (fa, _) = a.add_facility(Point::new(3.3, 6.6)).expect("add");
    let (fb, _) = b.add_facility(Point::new(3.3, 6.6)).expect("add");
    a.move_facility(fa, Point::new(7.7, 2.2)).expect("move");
    b.move_facility(fb, Point::new(7.7, 2.2)).expect("move");

    // Exact tiles agree bitwise after the same edit script.
    for (tx, ty) in [(0, 0), (1, 2), (3, 3)] {
        let id = TileId { zoom: ZE, tx, ty };
        let frame = b.tile_lod(id);
        assert!(!frame.approx);
        assert_eq!(a.tile(id).values(), frame.raster.values(), "{id:?} after edits");
    }

    // Coarse tiles re-satisfy containment against the *post-edit* base.
    let (mosaic, px) = base_mosaic(&b);
    for zoom in 0..ZE {
        let side = 1u32 << zoom;
        for ty in 0..side {
            for tx in 0..side {
                let id = TileId { zoom, tx, ty };
                let frame = b.tile_lod(id);
                assert_containment(&frame, id, &mosaic, px);
            }
        }
    }
}

#[test]
fn lazy_patch_equals_cold_rebuild_bitwise() {
    // Two LoD engines, same edit: one patches a warm pyramid, the
    // other builds cold after the edit. Their coarse tiles must be
    // bitwise identical — patching is not allowed to drift.
    let warm = build(true);
    let cold = build(true);
    let mut w = warm.session();
    let mut c = cold.session();
    let _ = w.tile_lod(TileId { zoom: 0, tx: 0, ty: 0 }); // warm pyramid
    let (fw, _) = w.add_facility(Point::new(5.1, 5.2)).expect("add");
    let (fc, _) = c.add_facility(Point::new(5.1, 5.2)).expect("add");
    w.remove_facility(fw).ok();
    c.remove_facility(fc).ok();
    for zoom in 0..ZE {
        let side = 1u32 << zoom;
        for ty in 0..side {
            for tx in 0..side {
                let id = TileId { zoom, tx, ty };
                let pw = w.tile_lod(id);
                let pc = c.tile_lod(id);
                assert_eq!(pw.raster.values(), pc.raster.values(), "{id:?} patched vs cold");
                assert_eq!(pw.error_bound, pc.error_bound, "{id:?} bounds");
            }
        }
    }
}
