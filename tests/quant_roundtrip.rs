//! Property tests for quantized tile payloads (ISSUE 10 satellite):
//!
//! * any **integral** raster whose value range fits the `u16` code
//!   space must take a compact (quantized) form and decode **bitwise**
//!   equal to the source — through `to_raster`, `get`, and the
//!   row-segment readers the stitcher uses;
//! * any raster at all — fractional, negative, tiny value sets —
//!   must round-trip bitwise through `encode` regardless of which
//!   form the encoder picked (compact forms are verified at encode
//!   time; the fallback is the raw raster);
//! * the explicitly **lossy** affine encoder must keep every pixel
//!   within half a quantization step of the source and report the
//!   true maximum error.

use proptest::prelude::*;
use rnnhm_geom::Rect;
use rnnhm_heatmap::quant::TilePayload;
use rnnhm_heatmap::raster::{GridSpec, HeatRaster};

fn raster_of(w: usize, h: usize, values: Vec<f64>) -> HeatRaster {
    HeatRaster::from_values(GridSpec::new(w, h, Rect::new(0.0, 1.0, 0.0, 1.0)), values)
}

fn assert_roundtrip(payload: &TilePayload, original: &HeatRaster, what: &str) {
    let back = payload.to_raster();
    assert_eq!(back.spec, original.spec, "{what}: spec must survive");
    for row in 0..original.spec.height {
        for col in 0..original.spec.width {
            assert!(
                back.get(col, row).to_bits() == original.get(col, row).to_bits(),
                "{what}: pixel ({col},{row}): decoded {} vs original {}",
                back.get(col, row),
                original.get(col, row)
            );
            assert!(
                payload.get(col, row).to_bits() == original.get(col, row).to_bits(),
                "{what}: random access diverged at ({col},{row})"
            );
        }
    }
    // Row segments (the stitch primitive) must agree too, including
    // segments starting mid-row.
    let w = original.spec.width;
    let mut seg = vec![0.0; w.div_ceil(2)];
    for row in 0..original.spec.height {
        payload.read_row_segment(row, w / 4, &mut seg[..w.div_ceil(2)]);
        for (i, v) in seg[..w.div_ceil(2)].iter().enumerate() {
            assert!(
                v.to_bits() == original.get(w / 4 + i, row).to_bits(),
                "{what}: row segment diverged at ({}, {row})",
                w / 4 + i
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn integral_rasters_quantize_and_roundtrip_bitwise(
        dims in (1usize..40, 1usize..20),
        offset in 0u32..1_000_000,
        raw in prop::collection::vec(0u32..60_000, 1..800),
    ) {
        let (w, h) = dims;
        let values: Vec<f64> =
            (0..w * h).map(|i| (offset + raw[i % raw.len()]) as f64).collect();
        let r = raster_of(w, h, values);
        let payload = TilePayload::encode(r.clone(), true);
        // The value range fits u16 codes, so the integral hint must
        // land a compact form — count-style tiles never stay raw.
        prop_assert!(payload.quantized(), "integral tile within u16 range must quantize");
        assert_roundtrip(&payload, &r, "integral");
    }

    #[test]
    fn arbitrary_rasters_roundtrip_bitwise_in_any_form(
        dims in (1usize..32, 1usize..16),
        raw in prop::collection::vec((0u64..u64::MAX, 0u32..2), 1..64),
        hint_raw in 0u8..2,
    ) {
        let (w, h) = dims;
        let hint = hint_raw == 1;
        // Draw pixels from a small pool of arbitrary bit patterns
        // (finite — NaN payloads are normalized to a canonical NaN by
        // reinterpreting) so palette, affine, and exact forms all get
        // exercised depending on the draw. Signed zeros and
        // denormals are fair game.
        let pool: Vec<f64> = raw
            .iter()
            .map(|&(bits, neg)| {
                let v = f64::from_bits(bits);
                let v = if v.is_nan() { f64::from_bits(0x7ff8_0000_0000_0000) } else { v };
                if neg == 1 { -v } else { v }
            })
            .collect();
        let values: Vec<f64> = (0..w * h).map(|i| pool[i % pool.len()]).collect();
        let r = raster_of(w, h, values);
        let payload = TilePayload::encode(r.clone(), hint);
        assert_roundtrip(&payload, &r, "arbitrary");
    }

    #[test]
    fn lossy_affine_stays_within_half_a_step(
        dims in (1usize..24, 1usize..12),
        raw in prop::collection::vec((0u32..2_000_000, 0u32..1000), 1..64),
    ) {
        let (w, h) = dims;
        // Fractional values in roughly [-1e6, 1e6].
        let pool: Vec<f64> =
            raw.iter().map(|&(a, b)| a as f64 - 1e6 + b as f64 / 1000.0).collect();
        let values: Vec<f64> = (0..w * h).map(|i| pool[i % pool.len()]).collect();
        let r = raster_of(w, h, values);
        let (payload, reported) = TilePayload::encode_lossy(&r);
        let (min, max) = r.min_max();
        let step = if max > min { (max - min) / 65535.0 } else { 1.0 };
        let decoded = payload.to_raster();
        let mut worst = 0.0f64;
        for (d, v) in decoded.values().iter().zip(r.values()) {
            worst = worst.max((d - v).abs());
        }
        // Half a step, with headroom for the f64 rounding of
        // `min + code · scale` at large magnitudes.
        let tol = 0.5 * step * (1.0 + 1e-9) + 1e-9 * max.abs().max(min.abs());
        prop_assert!(worst <= tol, "worst error {worst} exceeds half-step {tol}");
        prop_assert!(
            reported >= worst - f64::EPSILON * worst.abs(),
            "reported max error {reported} understates actual {worst}"
        );
    }
}
