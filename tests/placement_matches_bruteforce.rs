//! Differential proptest suite for the MaxBRkNN placement engine
//! (ISSUE 7's headline artifact): every optimizer answer is checked
//! against an exhaustive candidate-grid oracle — a dense lattice of
//! hypothetical facility positions, each scored by a full rebuild of
//! the k-th NN radii plus brute-force closed-containment RkNN counting
//! — across all 3 metrics × 4 measures × k ∈ {1, 2, 4}:
//!
//! * the reported argmax influence equals the grid maximum exactly
//!   (the optimizer's own representative points are injected into the
//!   candidate set, so the equality is two-sided),
//! * every reported placement's representative point realizes exactly
//!   the reported RNN set and influence under the oracle,
//! * the reported top-m dominates every grid candidate whose region is
//!   not among the reported ones,
//! * relocation: the post-removal argmax and the current-location
//!   score both match the oracle on the facility set minus the moved
//!   facility,
//! * greedy placement matches step-by-step exhaustive grid search,
//!   re-rebuilding the oracle's radii after each committed insert,
//! * for L∞, window-constrained placement matches the grid restricted
//!   to the window.
//!
//! The lattice is offset by an irrational-ish fraction of the step so
//! candidates never land on NN-circle boundaries of the quarter-integer
//! instances (where closed point containment and open region labels
//! legitimately differ).

use proptest::prelude::*;
use rnn_heatmap::prelude::*;

/// Points on a coarse quarter-integer grid (degenerate alignments
/// common, as in the core proptest suite).
fn points_strategy(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0u32..40, 0u32..40), n).prop_map(|v| {
        v.into_iter().map(|(x, y)| Point::new(x as f64 / 4.0, y as f64 / 4.0)).collect()
    })
}

/// The oracle's "full rebuild": every client's k-th NN radius
/// recomputed from the raw points.
fn kth_radii(clients: &[Point], facilities: &[Point], metric: Metric, k: usize) -> Vec<f64> {
    clients
        .iter()
        .map(|o| {
            let mut ds: Vec<f64> = facilities.iter().map(|f| metric.dist(o, f)).collect();
            ds.sort_by(f64::total_cmp);
            ds[k - 1]
        })
        .collect()
}

/// Brute-force closed-containment RkNN set of candidate `q` (sorted).
/// Zero-radius NN circles have empty interior and are dropped by the
/// arrangement builder (the client can never be influenced), so the
/// oracle drops them too.
fn oracle_rnn(clients: &[Point], radii: &[f64], metric: Metric, q: Point) -> Vec<u32> {
    clients
        .iter()
        .zip(radii)
        .enumerate()
        .filter(|(_, (o, &r))| r > 0.0 && metric.dist(o, &q) <= r)
        .map(|(i, _)| i as u32)
        .collect()
}

/// The offset candidate lattice over the instance (plus one far
/// exterior point so the empty-set influence always has a witness).
fn candidate_grid(points: &[Point]) -> Vec<Point> {
    let bb = Rect::bounding(points).expect("non-empty instance");
    let pad = 1.0;
    let (x0, y0) = (bb.x_lo - pad, bb.y_lo - pad);
    let (w, h) = (bb.width() + 2.0 * pad, bb.height() + 2.0 * pad);
    const G: usize = 14;
    let mut grid = Vec::with_capacity(G * G + 1);
    for i in 0..G {
        for j in 0..G {
            grid.push(Point::new(
                x0 + (i as f64 + 0.5137) * w / G as f64,
                y0 + (j as f64 + 0.5137) * h / G as f64,
            ));
        }
    }
    grid.push(Point::new(bb.x_hi + w + 3.17, bb.y_hi + h + 3.17));
    grid
}

/// Degenerate representative rectangles (razor-thin slivers from
/// grid-aligned inputs) put the representative point within float
/// noise of a boundary, where closed-vs-open containment is ambiguous;
/// those rare cases are skipped rather than asserted.
fn degenerate(p: &PlacementRegion) -> bool {
    p.rect.width() < 1e-6 || p.rect.height() < 1e-6
}

/// Checks one (instance, metric, k, measure) combination end to end.
fn check_combo<M: InfluenceMeasure>(
    clients: &[Point],
    facilities: &[Point],
    metric: Metric,
    k: usize,
    measure: &M,
) {
    let snap = ArrangementSnapshot::build_k(
        clients.to_vec(),
        facilities.to_vec(),
        metric,
        Mode::Bichromatic,
        k,
    )
    .expect("buildable instance");
    let query = PlacementQuery::new(&snap, measure);
    const M_TOP: usize = 3;
    let (top, stats) = query.top_placements_stats(M_TOP);
    assert_eq!(stats.evaluated + stats.pruned, stats.distinct_regions, "prune accounting");
    assert!(!top.is_empty(), "unconstrained placement is total");
    if top.iter().any(degenerate) {
        return;
    }

    let radii = kth_radii(clients, facilities, metric, k);
    // Every reported placement's representative point realizes its
    // claimed RNN set and influence under the brute-force oracle.
    for p in &top {
        let rnn = oracle_rnn(clients, &radii, metric, p.point);
        assert_eq!(rnn, p.rnn, "{metric:?} k={k}: reported RNN set at {:?}", p.point);
        assert_eq!(measure.influence(&rnn), p.influence, "{metric:?} k={k}: reported influence");
    }

    // Two-sided argmax equality: the grid (plus the injected reported
    // points) must peak exactly at the reported best.
    let grid = candidate_grid(&[clients, facilities].concat());
    let mut grid_max = f64::NEG_INFINITY;
    let reported: Vec<&[u32]> = top.iter().map(|p| p.rnn.as_slice()).collect();
    let floor = top.last().expect("non-empty").influence;
    for &q in grid.iter().chain(top.iter().map(|p| &p.point)) {
        let rnn = oracle_rnn(clients, &radii, metric, q);
        let influence = measure.influence(&rnn);
        grid_max = grid_max.max(influence);
        if !reported.contains(&rnn.as_slice()) {
            // Outside the reported regions the top-m dominates; with
            // fewer distinct regions than m, every region is reported
            // and an unreported signature would be a missed region.
            assert!(
                top.len() == M_TOP && influence <= floor,
                "{metric:?} k={k}: grid candidate {q:?} (influence {influence}) beats or \
                 escapes the reported top-{M_TOP} (floor {floor})"
            );
        }
    }
    assert_eq!(top[0].influence, grid_max, "{metric:?} k={k}: argmax equals grid maximum");

    // Relocation: oracle on the facility set minus facility 0.
    if facilities.len() > k {
        let rel = query.best_relocation(0).expect("facility 0 is removable");
        if !degenerate(&rel.best) {
            let rest: Vec<Point> = facilities[1..].to_vec();
            let radii2 = kth_radii(clients, &rest, metric, k);
            let mut best = f64::NEG_INFINITY;
            for &q in grid.iter().chain([rel.best.point].iter()) {
                best = best.max(measure.influence(&oracle_rnn(clients, &radii2, metric, q)));
            }
            assert_eq!(rel.best.influence, best, "{metric:?} k={k}: relocation argmax");
            // The old location is an exact input point, so it can lie
            // *exactly on* a post-removal circle boundary; under the
            // π/4-rotated L1 frame such a tie is one ulp from going
            // either way, which is a documented boundary ambiguity,
            // not an optimizer bug. Assert exact equality only in the
            // tie-free (general-position) case.
            let tie = clients
                .iter()
                .zip(&radii2)
                .any(|(o, &r)| r > 0.0 && metric.dist(o, &rel.from) == r);
            if !tie {
                let at_old = measure.influence(&oracle_rnn(clients, &radii2, metric, rel.from));
                assert_eq!(rel.current_influence, at_old, "{metric:?} k={k}: relocation current");
                assert_eq!(rel.gain, rel.best.influence - rel.current_influence);
            }
        }
        assert_eq!(snap.n_facilities(), facilities.len(), "tentative removal undone");
    }

    // Greedy: each step's argmax must match exhaustive grid search
    // against the oracle's current facility set, rebuilt per step.
    let greedy = query.greedy_place(2, &PlacementConstraints::none()).expect("greedy");
    let mut oracle_facilities = facilities.to_vec();
    for step in &greedy.steps {
        if degenerate(&step.chosen) {
            break;
        }
        let radii_now = kth_radii(clients, &oracle_facilities, metric, k);
        let mut best = f64::NEG_INFINITY;
        for &q in grid.iter().chain([step.chosen.point].iter()) {
            best = best.max(measure.influence(&oracle_rnn(clients, &radii_now, metric, q)));
        }
        assert_eq!(step.chosen.influence, best, "{metric:?} k={k}: greedy step argmax");
        let at_chosen =
            measure.influence(&oracle_rnn(clients, &radii_now, metric, step.chosen.point));
        assert_eq!(at_chosen, step.chosen.influence, "{metric:?} k={k}: greedy step witness");
        oracle_facilities.push(step.chosen.point);
    }

    // Window-constrained placement (exact for L∞ via the windowed
    // sweep): best-in-window equals the grid restricted to the window.
    if metric == Metric::Linf {
        let bb = Rect::bounding(clients).expect("non-empty");
        let window = Rect::new(
            bb.x_lo + bb.width() * 0.25,
            bb.x_lo + bb.width() * 0.75 + 0.5,
            bb.y_lo + bb.height() * 0.25,
            bb.y_lo + bb.height() * 0.75 + 0.5,
        );
        let constraints = PlacementConstraints { within: Some(window), min_influence: None };
        let constrained = query.top_placements_in(1, &constraints);
        if let Some(best) = constrained.first() {
            if !degenerate(best) {
                assert!(window.contains_closed(best.point), "constrained point in window");
                let mut grid_best = f64::NEG_INFINITY;
                for &q in grid.iter().filter(|q| window.contains_closed(**q)) {
                    grid_best =
                        grid_best.max(measure.influence(&oracle_rnn(clients, &radii, metric, q)));
                }
                let at_best = measure.influence(&oracle_rnn(clients, &radii, metric, best.point));
                assert_eq!(at_best, best.influence, "Linf k={k}: constrained witness");
                assert!(
                    best.influence >= grid_best,
                    "Linf k={k}: constrained best {} below in-window grid max {grid_best}",
                    best.influence
                );
            }
        }
    }
}

fn check_all_measures(clients: &[Point], facilities: &[Point], metric: Metric, k: usize) {
    check_combo(clients, facilities, metric, k, &CountMeasure);

    // Dyadic weights: sums are exact in any order, so equalities stay
    // bitwise.
    let weights: Vec<f64> = (0..clients.len()).map(|i| ((i % 9) as f64) * 0.25).collect();
    check_combo(clients, facilities, metric, k, &WeightedMeasure::new(weights));

    let nf = facilities.len() as u32;
    let assigned: Vec<u32> = (0..clients.len() as u32).map(|i| i % nf).collect();
    let capacities: Vec<u32> = (0..nf).map(|f| 1 + f % 5).collect();
    check_combo(clients, facilities, metric, k, &CapacityMeasure::new(assigned, capacities, 3));

    let edges: Vec<(u32, u32)> =
        (0..clients.len() as u32).map(|i| (i, (i + 1) % clients.len() as u32)).collect();
    let connectivity = if clients.len() > 2 {
        ConnectivityMeasure::from_edges(clients.len(), &edges)
    } else {
        ConnectivityMeasure::from_edges(clients.len(), &[])
    };
    check_combo(clients, facilities, metric, k, &connectivity);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn placement_matches_bruteforce(
        clients in points_strategy(8..26),
        facilities in points_strategy(5..9),
    ) {
        for metric in Metric::ALL {
            for k in [1usize, 2, 4] {
                check_all_measures(&clients, &facilities, metric, k);
            }
        }
    }
}
