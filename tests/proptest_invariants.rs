//! Property-based tests (proptest) over the core invariants:
//!
//! * every CREST label matches the brute-force oracle at its witness,
//! * CREST never labels more than CREST-A, and at least one label per
//!   distinct non-empty RNN set is produced,
//! * the L1 reduction is exact: RNN sets computed in the rotated frame
//!   equal direct L1 point queries,
//! * exact tilings (BA vs CREST-A) agree in area per signature,
//! * interval merging is sound and complete.

use proptest::prelude::*;
use rnn_heatmap::prelude::*;
use rnnhm_core::baseline::baseline_sweep;
use rnnhm_core::oracle::{
    area_by_signature, assert_area_maps_equal, rnn_at_points, rnn_at_square, signature,
};
use rnnhm_index::interval::{merge_intervals, Interval};

/// Strategy: a set of client/facility points on a coarse grid (snapping
/// to quarter-integers makes degenerate alignments — shared sides, equal
/// coordinates — *common* rather than rare, which is exactly what we
/// want to stress).
fn points_strategy(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0u32..40, 0u32..40), n).prop_map(|v| {
        v.into_iter().map(|(x, y)| Point::new(x as f64 / 4.0, y as f64 / 4.0)).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn crest_labels_match_oracle(
        clients in points_strategy(1..40),
        facilities in points_strategy(1..6),
    ) {
        let arr = build_square_arrangement(
            &clients, &facilities, Metric::Linf, Mode::Bichromatic).unwrap();
        let mut sink = CollectSink::default();
        crest_sweep(&arr, &CountMeasure, &mut sink);
        for r in &sink.regions {
            // Grid-snapped inputs make genuinely degenerate (zero-area)
            // pairs possible; they carry no open region.
            if r.rect.width() <= 0.0 || r.rect.height() <= 0.0 {
                continue;
            }
            let center = r.rect.center();
            prop_assert_eq!(
                signature(&r.rnn),
                rnn_at_square(&arr, center),
                "label at {:?}", center
            );
        }
    }

    #[test]
    fn crest_is_no_worse_than_crest_a_and_covers_all_sets(
        clients in points_strategy(1..30),
        facilities in points_strategy(1..5),
    ) {
        let arr = build_square_arrangement(
            &clients, &facilities, Metric::Linf, Mode::Bichromatic).unwrap();
        let mut crest = CollectSink::default();
        let s1 = crest_sweep(&arr, &CountMeasure, &mut crest);
        let mut full = CollectSink::default();
        let s2 = crest_a_sweep(&arr, &CountMeasure, &mut full);
        prop_assert!(s1.labels <= s2.labels);
        let mut a: Vec<Vec<u32>> = crest.regions.iter().map(|r| signature(&r.rnn)).collect();
        let mut b: Vec<Vec<u32>> = full.regions.iter().map(|r| signature(&r.rnn)).collect();
        a.sort(); a.dedup(); a.retain(|s| !s.is_empty());
        b.sort(); b.dedup(); b.retain(|s| !s.is_empty());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn l1_rotation_reduction_is_exact(
        clients in points_strategy(1..25),
        facilities in points_strategy(1..5),
        qx in 0u32..160, qy in 0u32..160,
    ) {
        let arr = build_square_arrangement(
            &clients, &facilities, Metric::L1, Mode::Bichromatic).unwrap();
        let q = Point::new(qx as f64 / 16.0, qy as f64 / 16.0);
        // Direct L1 definition vs containment in the rotated squares.
        let direct = rnn_at_points(&clients, &facilities, Metric::L1, q);
        let rotated = rnn_at_square(&arr, arr.space.to_sweep(q));
        // Points exactly on an NN-circle boundary differ between open
        // containment and the strict `<` definition only on a measure-zero
        // set; skip those.
        let ambiguous = clients.iter().enumerate().any(|(i, o)| {
            let d_q = Metric::L1.dist(o, &q);
            let d_nn = facilities.iter()
                .map(|f| Metric::L1.dist(o, f))
                .fold(f64::INFINITY, f64::min);
            (d_q - d_nn).abs() < 1e-9 && i < clients.len()
        });
        if !ambiguous {
            prop_assert_eq!(direct, rotated, "query {:?}", q);
        }
    }

    #[test]
    fn ba_and_crest_a_areas_agree(
        clients in points_strategy(1..20),
        facilities in points_strategy(1..4),
    ) {
        let arr = build_square_arrangement(
            &clients, &facilities, Metric::Linf, Mode::Bichromatic).unwrap();
        let mut ba = CollectSink::default();
        baseline_sweep(&arr, &CountMeasure, &mut ba);
        let mut ca = CollectSink::default();
        crest_a_sweep(&arr, &CountMeasure, &mut ca);
        assert_area_maps_equal(
            &area_by_signature(&ba.regions),
            &area_by_signature(&ca.regions),
            1e-9,
        );
    }

    #[test]
    fn interval_merge_is_sound_and_complete(
        raw in prop::collection::vec((0i32..100, 0i32..20), 0..20),
        probe in 0i32..120,
    ) {
        let input: Vec<Interval> = raw.iter()
            .map(|&(lo, len)| Interval::new(lo as f64, (lo + len) as f64))
            .collect();
        let mut merged = input.clone();
        merge_intervals(&mut merged);
        // Disjoint and sorted.
        for w in merged.windows(2) {
            prop_assert!(w[0].hi < w[1].lo, "merged intervals overlap or touch");
        }
        // Coverage-equivalent: any probe point is covered by the merged
        // set iff it was covered by some input interval.
        let p = probe as f64;
        let in_input = input.iter().any(|iv| iv.contains(p));
        let in_merged = merged.iter().any(|iv| iv.contains(p));
        prop_assert_eq!(in_input, in_merged);
    }

    #[test]
    fn element_distinctness_reduction(values in prop::collection::vec(2i64..40, 1..25)) {
        // §VI-C: from reals a_1..a_n build squares with diagonal corners
        // (a_1, a_1)–(a_i, a_i); the Region Coloring output has exactly
        // d distinct RNN sets (including the exterior's empty set), where
        // d is the number of distinct values — so an RC algorithm decides
        // element distinctness. a_1 = 0 here and generated values are ≥ 2,
        // so no square degenerates to a point.
        let a1 = 0.0f64;
        let squares: Vec<Rect> = values
            .iter()
            .map(|&v| Rect::from_corners(Point::new(a1, a1), Point::new(v as f64, v as f64)))
            .collect();
        let owners = (0..squares.len() as u32).collect();
        let n = squares.len();
        let arr = rnnhm_core::SquareArrangement {
            squares,
            owners,
            space: rnnhm_core::CoordSpace::Identity,
            n_clients: n,
            dropped: 0,
            k: 1,
        };
        let mut sink = CollectSink::default();
        crest_sweep(&arr, &CountMeasure, &mut sink);
        let mut sigs: Vec<Vec<u32>> =
            sink.regions.iter().map(|r| signature(&r.rnn)).collect();
        sigs.sort();
        sigs.dedup();
        sigs.retain(|s| !s.is_empty());
        let mut distinct = values.clone();
        distinct.sort_unstable();
        distinct.dedup();
        // d distinct values among {a_1} ∪ {a_i}: a_1 contributes the
        // exterior (empty set); every distinct a_i contributes one ring.
        prop_assert_eq!(sigs.len(), distinct.len(),
            "distinct RNN sets must count distinct inputs");
    }

    #[test]
    fn rnnset_load_roundtrip(ids in prop::collection::hash_set(0u32..500, 0..60)) {
        let mut s = rnnhm_core::RnnSet::new(500);
        let v: Vec<u32> = ids.iter().copied().collect();
        s.load(&v);
        prop_assert_eq!(s.len(), ids.len());
        for id in 0..500u32 {
            prop_assert_eq!(s.contains(id), ids.contains(&id));
        }
        let mut snap = s.snapshot();
        snap.sort_unstable();
        let mut expect = v.clone();
        expect.sort_unstable();
        prop_assert_eq!(snap, expect);
    }
}
