//! Property test: a viewport stitched from pyramid tiles is
//! bit-identical to a one-shot `raster()` of the same `GridSpec`
//! (ISSUE 2 acceptance).
//!
//! Random square and disk arrangements are explored through random
//! viewports — including viewports straddling tile boundaries and
//! hanging off the world extent — and every stitched pixel is compared
//! against a one-shot scanline render of the stitched raster's own
//! spec with `f64::to_bits` equality. The warm path is exercised too:
//! a second, overlapping viewport must reuse cached tiles *and* stay
//! bit-identical, proving caching never changes pixels.

use std::sync::Arc;

use proptest::prelude::*;
use rnn_heatmap::prelude::*;
use rnn_heatmap::HeatMapBuilder;
use rnnhm_core::arrangement::CoordSpace;
use rnnhm_geom::Circle;
use rnnhm_heatmap::scanline::{rasterize_disks_scanline_bands, rasterize_squares_scanline_bands};
use rnnhm_heatmap::tiles::{TileCache, TileScheme};

fn assert_bit_identical(stitched: &HeatRaster, one_shot: &HeatRaster, what: &str) {
    assert_eq!(stitched.spec, one_shot.spec, "{what}: stitched spec must be renderable one-shot");
    for row in 0..stitched.spec.height {
        for col in 0..stitched.spec.width {
            assert!(
                stitched.get(col, row).to_bits() == one_shot.get(col, row).to_bits(),
                "{what}: pixel ({col},{row}): stitched {} vs one-shot {}",
                stitched.get(col, row),
                one_shot.get(col, row)
            );
        }
    }
}

/// Squares on a coarse quarter-integer grid over [-0.5, 10.5]², sizes
/// down to zero, so edges frequently align with pixel centers and tile
/// boundaries.
fn squares_strategy(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Rect>> {
    prop::collection::vec((0u32..44, 0u32..44, 0u32..16, 0u32..16), n).prop_map(|v| {
        v.into_iter()
            .map(|(x, y, w, h)| {
                let (x, y) = (x as f64 / 4.0 - 0.5, y as f64 / 4.0 - 0.5);
                Rect::new(x, x + w as f64 / 4.0, y, y + h as f64 / 4.0)
            })
            .collect()
    })
}

fn disks_strategy(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Circle>> {
    prop::collection::vec((0u32..44, 0u32..44, 1u32..9), n).prop_map(|v| {
        v.into_iter()
            .map(|(x, y, r)| {
                Circle::new(Point::new(x as f64 / 4.0 - 0.5, y as f64 / 4.0 - 0.5), r as f64 / 4.0)
            })
            .collect()
    })
}

fn square_arrangement_of(squares: Vec<Rect>, space: CoordSpace) -> SquareArrangement {
    let owners = (0..squares.len() as u32).collect();
    let n = squares.len();
    SquareArrangement { squares, owners, space, n_clients: n.max(1), dropped: 0, k: 1 }
}

/// Viewports drawn to straddle interesting places: tile interiors,
/// tile boundaries, the world edge and beyond it.
fn viewport_strategy() -> impl Strategy<Value = (Rect, usize, usize)> {
    (-40i32..60, -40i32..60, 1u32..50, 1u32..50, 8usize..90, 8usize..90).prop_map(
        |(x, y, w, h, px_w, px_h)| {
            let (x, y) = (x as f64 / 4.0, y as f64 / 4.0);
            (Rect::new(x, x + w as f64 / 4.0, y, y + h as f64 / 4.0), px_w, px_h)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn stitched_squares_match_one_shot(
        squares in squares_strategy(0..35),
        view in viewport_strategy(),
        tile_px_pow in 3u32..6, // tiles of 8..32 px: many boundaries
    ) {
        let (rect, px_w, px_h) = view;
        let arr = square_arrangement_of(squares, CoordSpace::Identity);
        let scheme = TileScheme::for_extent(
            arr.bbox().unwrap_or(Rect::new(0.0, 10.0, 0.0, 10.0)),
            1 << tile_px_pow,
        );
        let cache = TileCache::new(64 << 20);
        let measure = CountMeasure;
        let view = scheme.viewport(rect, px_w, px_h);
        // Tiles render the *restricted* sub-arrangement, as production
        // does — this property-tests the filter's exactness contract.
        let stitched = view.render(&scheme, &cache, arr.fingerprint(), measure.cache_key(),
            |_, spec: GridSpec| {
                let sub = arr.restrict_to(spec.extent);
                rasterize_squares_scanline_bands(&sub, &measure, spec, 1)
            });
        let one_shot = rasterize_squares_scanline_bands(&arr, &measure, stitched.spec, 1);
        assert_bit_identical(&stitched, &one_shot, "squares");
    }

    #[test]
    fn stitched_disks_match_one_shot_and_warm_pans_stay_exact(
        disks in disks_strategy(0..30),
        view in viewport_strategy(),
        pan_px in 0i32..40,
    ) {
        let (rect, px_w, px_h) = view;
        let owners = (0..disks.len() as u32).collect();
        let n = disks.len().max(1);
        let arr = DiskArrangement { disks, owners, n_clients: n, dropped: 0, k: 1 };
        let scheme = TileScheme::for_extent(
            arr.bbox().unwrap_or(Rect::new(0.0, 10.0, 0.0, 10.0)),
            16,
        );
        let cache = TileCache::new(64 << 20);
        let measure = WeightedMeasure::new((0..n).map(|i| (i % 7) as f64 * 0.5).collect());
        let render = |_, spec: GridSpec| {
            let sub = arr.restrict_to(spec.extent);
            rasterize_disks_scanline_bands(&sub, &measure, spec, 1)
        };
        let keys = (arr.fingerprint(), measure.cache_key());

        let view = scheme.viewport(rect, px_w, px_h);
        let stitched = view.render(&scheme, &cache, keys.0, keys.1, render);
        let one_shot = rasterize_disks_scanline_bands(&arr, &measure, stitched.spec, 1);
        assert_bit_identical(&stitched, &one_shot, "disks cold");

        // Pan: an overlapping viewport served partly from the cache
        // must be just as exact as a cold render of its own spec.
        let shift = pan_px as f64 * 0.1;
        let panned = Rect::new(rect.x_lo + shift, rect.x_hi + shift, rect.y_lo, rect.y_hi);
        let view2 = scheme.viewport(panned, px_w, px_h);
        let hits_before = cache.stats().hits;
        let stitched2 = view2.render(&scheme, &cache, keys.0, keys.1, render);
        let one_shot2 = rasterize_disks_scanline_bands(&arr, &measure, stitched2.spec, 1);
        assert_bit_identical(&stitched2, &one_shot2, "disks warm");
        if view2.tiles().iter().any(|t| view.tiles().contains(t)) {
            prop_assert!(cache.stats().hits > hits_before, "overlap must hit the cache");
        }
    }

    #[test]
    fn facade_viewport_matches_raster_for_all_metrics(
        pts in prop::collection::vec((0u32..40, 0u32..40), 3..30),
        view in viewport_strategy(),
    ) {
        let (rect, px_w, px_h) = view;
        // End-to-end through HeatMapBuilder: real NN-circles, every
        // metric (L1 exercises the rotated-frame path), tiles vs the
        // public one-shot raster() of the stitched spec.
        let points: Vec<Point> =
            pts.iter().map(|&(x, y)| Point::new(x as f64 / 4.0, y as f64 / 4.0)).collect();
        let (clients, facilities) = points.split_at(points.len() - 1);
        for metric in Metric::ALL {
            let map = match HeatMapBuilder::bichromatic(clients.to_vec(), facilities.to_vec())
                .metric(metric)
                .tile_px(16)
                .build(CountMeasure)
            {
                Ok(m) => m,
                Err(_) => continue, // e.g. every client coincides with the facility
            };
            let stitched = map.viewport(rect, px_w, px_h);
            let one_shot = map.raster(stitched.spec);
            assert_bit_identical(&stitched, &one_shot, "facade");
        }
    }
}

#[test]
fn viewport_straddling_world_corner_is_exact() {
    // A viewport hanging off the world's south-west corner: the window
    // clamps to the world and must still match the one-shot render.
    let squares = vec![
        Rect::new(0.0, 2.0, 0.0, 2.0),
        Rect::new(1.5, 4.0, 0.5, 3.0),
        Rect::new(0.0, 9.0, 0.0, 9.0),
    ];
    let arr = square_arrangement_of(squares, CoordSpace::Identity);
    let scheme = TileScheme::for_extent(arr.bbox().unwrap(), 16);
    let cache = TileCache::new(16 << 20);
    let view = scheme.viewport(Rect::new(-30.0, 1.0, -30.0, 1.0), 64, 64);
    let stitched =
        view.render(&scheme, &cache, arr.fingerprint(), CountMeasure.cache_key(), |_, spec| {
            rasterize_squares_scanline_bands(&arr, &CountMeasure, spec, 1)
        });
    assert!(scheme.world().contains_rect(&stitched.spec.extent));
    let one_shot = rasterize_squares_scanline_bands(&arr, &CountMeasure, stitched.spec, 1);
    assert_bit_identical(&stitched, &one_shot, "world corner");
}

#[test]
fn tile_aligned_viewport_reuses_whole_tiles() {
    // A viewport exactly one tile wide/high, then the neighbouring
    // tile: disjoint but tile-aligned — the second render must not
    // re-render the first tile, and a re-render of the first viewport
    // must be served entirely from the cache (zero new misses).
    let squares = vec![Rect::new(0.5, 7.5, 0.5, 7.5), Rect::new(2.0, 3.0, 2.0, 3.0)];
    let arr = square_arrangement_of(squares, CoordSpace::Identity);
    let scheme = TileScheme::for_extent(arr.bbox().unwrap(), 16);
    let cache = TileCache::new(16 << 20);
    let render = |_, spec| rasterize_squares_scanline_bands(&arr, &CountMeasure, spec, 1);
    let keys = (arr.fingerprint(), CountMeasure.cache_key());
    let world = scheme.world();
    let zoom1_tile = world.width() / 2.0;
    let tile0 = Rect::new(world.x_lo, world.x_lo + zoom1_tile, world.y_lo, world.y_lo + zoom1_tile);

    let v0 = scheme.viewport(tile0, 16, 16);
    let r0 = v0.render(&scheme, &cache, keys.0, keys.1, render);
    let misses_after_first = cache.stats().misses;
    let r0_again = v0.render(&scheme, &cache, keys.0, keys.1, render);
    assert_eq!(cache.stats().misses, misses_after_first, "warm repeat renders nothing");
    for (a, b) in r0.values().iter().zip(r0_again.values()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    // Sanity: the cached tile is the same Arc, not a re-render.
    let id = v0.tiles()[0];
    let first: Arc<rnnhm_heatmap::quant::TilePayload> = cache
        .peek(rnnhm_heatmap::tiles::TileKey {
            arrangement: keys.0,
            measure: keys.1,
            scheme: scheme.fingerprint(),
            tile: id,
        })
        .expect("tile cached");
    let fetched = cache.fetch(keys.0, keys.1, &scheme, &[id], render);
    assert!(Arc::ptr_eq(&first, &fetched[0]));
}
