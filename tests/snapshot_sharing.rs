//! Snapshot fork and copy-on-write storage contracts (ISSUE 5
//! acceptance): forking is `O(1)` — the fork *is* the same snapshot,
//! no circles or candidate lists are cloned, asserted via
//! shared-allocation pointer equality — and an edit's successor
//! snapshot shares every untouched storage chunk with its parent.

use std::sync::Arc;

use rnn_heatmap::prelude::*;
use rnn_heatmap::HeatMapBuilder;

/// Deterministic uniform points on the span (the library's own
/// generator — `rnnhm_data::gen::uniform` — reused instead of a
/// hand-rolled PRNG).
fn pseudo_points(n: usize, seed: u64, span: f64) -> Vec<Point> {
    rnn_heatmap::data::uniform(n, Rect::new(0.0, span, 0.0, span), seed)
}

#[test]
fn fork_is_the_same_snapshot_no_copies() {
    let clients = pseudo_points(10_000, 3, 1.0);
    let facilities = pseudo_points(100, 5, 1.0);
    let engine = HeatMapBuilder::bichromatic(clients, facilities)
        .metric(Metric::Linf)
        .build_engine(CountMeasure)
        .expect("non-empty input");
    let session = engine.session();
    let fork = session.fork();
    // O(1) fork: literally the same allocation, not a copy of any
    // circle or candidate list.
    assert!(
        Arc::ptr_eq(session.snapshot(), fork.snapshot()),
        "a fork must share the snapshot allocation"
    );
    assert_eq!(session.fingerprint(), fork.fingerprint());
    // And the same snapshot as the engine root.
    assert!(Arc::ptr_eq(session.snapshot(), engine.root_snapshot()));
    // Full self-sharing, for the record.
    let self_sharing = session.snapshot().storage_sharing(fork.snapshot());
    assert_eq!(self_sharing.shared_chunks, self_sharing.total_chunks);
    assert!(self_sharing.shares_clients);
}

#[test]
fn edits_share_untouched_chunks_with_the_parent() {
    let clients = pseudo_points(20_000, 7, 1.0);
    let facilities = pseudo_points(250, 9, 1.0);
    let engine = HeatMapBuilder::bichromatic(clients, facilities)
        .metric(Metric::Linf)
        .build_engine(CountMeasure)
        .expect("non-empty input");
    let parent = engine.session();
    let mut child = parent.fork();
    // A geometrically local edit: only the clients near the new
    // facility change circles.
    let (_, dirty) = child.add_facility(Point::new(0.31, 0.62)).unwrap();
    assert!(!dirty.is_empty());
    assert!(!Arc::ptr_eq(parent.snapshot(), child.snapshot()), "the edit committed a new version");
    assert_ne!(parent.fingerprint(), child.fingerprint());

    let sharing = child.snapshot().storage_sharing(parent.snapshot());
    assert!(sharing.shares_clients, "the client set is never copied");
    assert!(
        sharing.shared_chunks * 4 > sharing.total_chunks * 3,
        "chunk-level copy-on-write must keep most storage shared after a local edit: {sharing:?}"
    );

    // The parent is bitwise untouched: its view of the world renders
    // exactly as before the child's edit.
    let rect = Rect::new(0.2, 0.8, 0.4, 0.9);
    let parent_frame = parent.viewport(rect, 64, 64);
    let parent_one_shot = parent.raster(parent_frame.spec);
    for (a, b) in parent_frame.values().iter().zip(parent_one_shot.values()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    // And the branches disagree exactly where the edit landed.
    let child_frame = child.viewport(rect, 64, 64);
    assert_ne!(child_frame.values(), parent_frame.values());
}

#[test]
fn noop_edits_commit_without_new_fingerprints() {
    let clients = pseudo_points(500, 11, 1.0);
    let facilities = pseudo_points(10, 13, 1.0);
    let engine = HeatMapBuilder::bichromatic(clients, facilities)
        .metric(Metric::L2)
        .build_engine(CountMeasure)
        .expect("non-empty input");
    let mut session = engine.session();
    let fp = session.fingerprint();
    let gen = session.generation();
    // A facility in the far wilderness steals no client: the snapshot
    // changes (facility bookkeeping) but the geometry — and thus the
    // cache fingerprint — does not.
    let (id, dirty) = session.add_facility(Point::new(500.0, 500.0)).unwrap();
    assert!(dirty.is_empty());
    assert_eq!(session.fingerprint(), fp);
    assert_eq!(session.generation(), gen);
    assert_eq!(session.n_facilities(), 11);
    // Removing it is equally invisible.
    let dirty = session.remove_facility(id).unwrap();
    assert!(dirty.is_empty());
    assert_eq!(session.fingerprint(), fp);
}

#[test]
fn engine_registry_tracks_live_snapshots() {
    let clients = pseudo_points(400, 17, 1.0);
    let facilities = pseudo_points(8, 19, 1.0);
    let engine = HeatMapBuilder::bichromatic(clients, facilities)
        .metric(Metric::Linf)
        .build_engine(CountMeasure)
        .expect("non-empty input");
    assert_eq!(engine.snapshots().len(), 1, "the root is registered at build");

    let mut a = engine.session();
    a.add_facility(Point::new(0.5, 0.5)).unwrap();
    let mut b = a.fork();
    b.add_facility(Point::new(0.25, 0.75)).unwrap();
    let live = engine.snapshots();
    assert_eq!(live.len(), 3, "root + two committed edits are alive");
    assert!(live.iter().any(|s| s.fingerprint() == a.fingerprint()));
    assert!(live.iter().any(|s| s.fingerprint() == b.fingerprint()));

    // Dropping a branch lets its snapshot be garbage-collected: the
    // registry only upgrades snapshots some session still holds.
    // (Drop our own listing first — it pins every snapshot it lists.)
    drop(live);
    let b_fp = b.fingerprint();
    drop(b);
    let live = engine.snapshots();
    assert!(
        !live.iter().any(|s| s.fingerprint() == b_fp),
        "a dropped branch's snapshot must not be resurrectable"
    );
    // Time travel to a live snapshot yields a working session.
    let back = engine.session_at(live[0].clone());
    assert!(back.n_circles() > 0);
}

#[test]
fn registry_prunes_dead_entries_eagerly_and_reports_stats() {
    let clients = pseudo_points(400, 23, 1.0);
    let facilities = pseudo_points(8, 29, 1.0);
    let engine = HeatMapBuilder::bichromatic(clients, facilities)
        .metric(Metric::Linf)
        .build_engine(CountMeasure)
        .expect("non-empty input");

    // Commit-and-drop a pile of branches: without eager pruning the
    // registry would hold a dead weak ref per commit until the
    // periodic (every-64th) sweep.
    for i in 0..20 {
        let mut s = engine.session();
        s.add_facility(Point::new(0.3 + 0.02 * i as f64, 0.4)).unwrap();
        // `s` drops here; its snapshot dies with it.
    }
    let st = engine.registry_stats();
    assert_eq!(st.registered, 21, "root + 20 commits registered over the lifetime");
    assert!(st.live >= 1, "the root is always alive");
    // `session()` pruned on each loop iteration, so dead entries never
    // piled past one generation's worth.
    assert!(
        st.entries <= st.live + 1,
        "session() must keep the registry near its live size: {st:?}"
    );

    // `gc()` sweeps the remaining backlog and reports the live view.
    let swept = engine.gc();
    assert_eq!(swept.entries, swept.live, "gc leaves no dead entries behind");
    assert_eq!(swept.registered, 21, "lifetime count is monotone");
    assert_eq!(swept.live, engine.snapshots().len());

    // `snapshots()` prunes too: park a dead branch, list, and check
    // the backlog is gone without an explicit gc.
    let mut s = engine.session();
    s.add_facility(Point::new(0.71, 0.42)).unwrap();
    drop(s);
    let before = engine.registry_stats();
    assert!(before.entries > before.live, "a dead branch is parked");
    let _ = engine.snapshots();
    let after = engine.registry_stats();
    assert_eq!(after.entries, after.live, "snapshots() swept the dead entry");
}
