//! Tile-cache invalidation under what-if edits (ISSUE 3 satellites):
//! an edit must evict *exactly* the cached tiles intersecting its
//! `DirtyRegion` — verified against hit/miss/eviction/invalidation
//! stats before and after — and a viewport far from the edit must stay
//! fully warm (zero re-renders), because clean tiles are re-keyed to
//! the edited arrangement's fingerprint rather than orphaned.

use rnn_heatmap::prelude::*;
use rnn_heatmap::HeatMapBuilder;

/// Two well-separated city clusters, each with its own facility, so
/// edits in one cluster cannot change NN distances in the other.
fn two_cities() -> (Vec<Point>, Vec<Point>) {
    let mut state = 77u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64)
    };
    let mut clients = Vec::new();
    for _ in 0..40 {
        clients.push(Point::new(next() * 5.0, next() * 5.0)); // west city
        clients.push(Point::new(50.0 + next() * 5.0, 50.0 + next() * 5.0)); // east city
    }
    let facilities = vec![Point::new(2.5, 2.5), Point::new(52.5, 52.5)];
    (clients, facilities)
}

#[test]
fn edits_evict_exactly_dirty_tiles_and_keep_far_viewports_warm() {
    let (clients, facilities) = two_cities();
    let mut map = HeatMapBuilder::bichromatic(clients, facilities)
        .metric(Metric::Linf)
        .tile_px(16)
        .build(CountMeasure)
        .unwrap();
    let west = Rect::new(-1.0, 6.0, -1.0, 6.0);
    let east = Rect::new(49.0, 56.0, 49.0, 56.0);
    let west_frame = map.viewport(west, 64, 64);
    let _ = map.viewport(east, 64, 64);
    let warm = map.tile_cache_stats();
    assert_eq!(warm.invalidations, 0);
    assert!(warm.entries > 0);

    // Edit inside the west city.
    let (_, dirty) = map.add_facility(Point::new(1.0, 1.0)).unwrap();
    assert!(!dirty.is_empty());
    let after_edit = map.tile_cache_stats();

    // Exactly the cached tiles intersecting the dirty region are gone.
    let scheme = map.tile_scheme().clone();
    let count_dirty = |rect: Rect| {
        scheme
            .viewport(rect, 64, 64)
            .tiles()
            .iter()
            .filter(|&&t| dirty.intersects(&scheme.tile_extent(t)))
            .count()
    };
    let dirty_west = count_dirty(west);
    let dirty_east = count_dirty(east);
    assert!(dirty_west > 0, "an edit inside the west viewport must dirty some of its tiles");
    assert_eq!(dirty_east, 0, "a west edit must not touch east tiles");
    assert_eq!(
        after_edit.invalidations, dirty_west as u64,
        "invalidations = exactly the cached tiles intersecting the dirty region"
    );
    assert_eq!(
        after_edit.entries,
        warm.entries - dirty_west,
        "only invalidated entries leave the cache"
    );
    assert_eq!(after_edit.evictions, warm.evictions, "invalidation is not LRU eviction");

    // The east viewport is fully warm across the edit: zero misses,
    // zero renders — its tiles were re-keyed, not dropped. Previews
    // see them too.
    let east_preview = map.viewport_preview(east, 64, 64);
    assert_eq!(east_preview.resolved, 1.0, "far preview fully resolved after the edit");
    let before = map.tile_cache_stats().misses;
    let _ = map.viewport(east, 64, 64);
    assert_eq!(map.tile_cache_stats().misses, before, "far viewport re-renders nothing");

    // The west viewport re-renders exactly its dirty tiles and comes
    // back bit-identical to an uncached render of the same spec.
    let before = map.tile_cache_stats().misses;
    let frame = map.viewport(west, 64, 64);
    let rerendered = (map.tile_cache_stats().misses - before) as usize;
    assert_eq!(rerendered, dirty_west, "re-renders = invalidated tiles, nothing more");
    let one_shot = map.raster(frame.spec);
    for (a, b) in frame.values().iter().zip(one_shot.values()) {
        assert_eq!(a.to_bits(), b.to_bits(), "edited west viewport must be exact");
    }
    assert_ne!(frame.values(), west_frame.values(), "the edit visibly changed the west heat map");
}

#[test]
fn noop_edit_invalidates_nothing() {
    let (clients, facilities) = two_cities();
    let mut map = HeatMapBuilder::bichromatic(clients, facilities)
        .metric(Metric::Linf)
        .tile_px(16)
        .build(CountMeasure)
        .unwrap();
    let west = Rect::new(-1.0, 6.0, -1.0, 6.0);
    let _ = map.viewport(west, 64, 64);
    let warm = map.tile_cache_stats();
    let gen = map.generation();
    // A facility in empty wilderness steals no client.
    let (_, dirty) = map.add_facility(Point::new(-400.0, -400.0)).unwrap();
    assert!(dirty.is_empty());
    assert_eq!(map.generation(), gen, "no geometry change, no generation bump");
    let stats = map.tile_cache_stats();
    assert_eq!(stats.invalidations, 0);
    assert_eq!(stats.entries, warm.entries);
    let before = stats.misses;
    let _ = map.viewport(west, 64, 64);
    assert_eq!(map.tile_cache_stats().misses, before, "everything still warm");
}

#[test]
fn successive_edits_keep_cache_consistent() {
    // Several edits in a row, interleaved with viewport renders: the
    // cache key chain (fingerprint generation bumps) must never serve
    // a stale tile — every frame stays bit-identical to one-shot.
    let (clients, facilities) = two_cities();
    let mut map = HeatMapBuilder::bichromatic(clients, facilities)
        .metric(Metric::L2)
        .tile_px(16)
        .build(CountMeasure)
        .unwrap();
    let west = Rect::new(-1.0, 6.0, -1.0, 6.0);
    let mut ids = Vec::new();
    for step in 0..4 {
        let p = Point::new(0.5 + step as f64, 4.0 - step as f64);
        let (id, _) = map.add_facility(p).unwrap();
        ids.push(id);
        let frame = map.viewport(west, 48, 48);
        let one_shot = map.raster(frame.spec);
        for (a, b) in frame.values().iter().zip(one_shot.values()) {
            assert_eq!(a.to_bits(), b.to_bits(), "step {step}");
        }
    }
    for id in ids {
        map.remove_facility(id).unwrap();
        let frame = map.viewport(west, 48, 48);
        let one_shot = map.raster(frame.spec);
        for (a, b) in frame.values().iter().zip(one_shot.values()) {
            assert_eq!(a.to_bits(), b.to_bits(), "removal of {id}");
        }
    }
    assert!(map.tile_cache_stats().invalidations > 0);
    assert!(map.tile_cache_stats().hits > 0, "pans across edits still reuse clean tiles");
}
