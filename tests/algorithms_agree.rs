//! Cross-algorithm agreement on real NN-circle workloads.
//!
//! BA (grid + enclosure queries), CREST-A (full strips) and CREST
//! (changed intervals) compute the same Region Coloring. Two exact
//! tilings must assign identical total area per RNN-set signature, and
//! every CREST label must match the brute-force oracle at its
//! representative point.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnn_heatmap::prelude::*;
use rnnhm_core::baseline::baseline_sweep;
use rnnhm_core::oracle::{area_by_signature, assert_area_maps_equal, rnn_at_square, signature};
use rnnhm_core::parallel::parallel_crest_uncapped;

fn workload(n_clients: usize, n_facilities: usize, seed: u64) -> (Vec<Point>, Vec<Point>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pt = |scale: f64| Point::new(rng.random::<f64>() * scale, rng.random::<f64>() * scale);
    let clients = (0..n_clients).map(|_| pt(10.0)).collect();
    let facilities = (0..n_facilities).map(|_| pt(10.0)).collect();
    (clients, facilities)
}

#[test]
fn ba_and_crest_a_tile_identically_linf() {
    for seed in 0..5 {
        let (clients, facilities) = workload(60, 6, seed);
        let arr = build_square_arrangement(&clients, &facilities, Metric::Linf, Mode::Bichromatic)
            .unwrap();
        let mut ba = CollectSink::default();
        baseline_sweep(&arr, &CountMeasure, &mut ba);
        let mut ca = CollectSink::default();
        crest_a_sweep(&arr, &CountMeasure, &mut ca);
        assert_area_maps_equal(
            &area_by_signature(&ba.regions),
            &area_by_signature(&ca.regions),
            1e-9,
        );
    }
}

#[test]
fn ba_and_crest_a_tile_identically_l1_rotated() {
    for seed in 5..9 {
        let (clients, facilities) = workload(50, 10, seed);
        let arr =
            build_square_arrangement(&clients, &facilities, Metric::L1, Mode::Bichromatic).unwrap();
        let mut ba = CollectSink::default();
        baseline_sweep(&arr, &CountMeasure, &mut ba);
        let mut ca = CollectSink::default();
        crest_a_sweep(&arr, &CountMeasure, &mut ca);
        assert_area_maps_equal(
            &area_by_signature(&ba.regions),
            &area_by_signature(&ca.regions),
            1e-9,
        );
    }
}

#[test]
fn crest_labels_match_oracle_on_workloads() {
    for (metric, seed) in [(Metric::Linf, 11), (Metric::L1, 12)] {
        let (clients, facilities) = workload(80, 8, seed);
        let arr =
            build_square_arrangement(&clients, &facilities, metric, Mode::Bichromatic).unwrap();
        let mut sink = CollectSink::default();
        let stats = crest_sweep(&arr, &CountMeasure, &mut sink);
        assert!(stats.labels > 0);
        for r in &sink.regions {
            if r.rect.width() < 1e-9 || r.rect.height() < 1e-9 {
                continue; // hairline sliver below verification resolution
            }
            let center = r.rect.center();
            assert_eq!(
                signature(&r.rnn),
                rnn_at_square(&arr, center),
                "{metric:?} label at {center:?}"
            );
        }
    }
}

#[test]
fn crest_distinct_sets_match_crest_a_on_workloads() {
    for seed in 20..25 {
        let (clients, facilities) = workload(70, 7, seed);
        let arr = build_square_arrangement(&clients, &facilities, Metric::Linf, Mode::Bichromatic)
            .unwrap();
        let mut crest = CollectSink::default();
        let s_crest = crest_sweep(&arr, &CountMeasure, &mut crest);
        let mut full = CollectSink::default();
        let s_full = crest_a_sweep(&arr, &CountMeasure, &mut full);
        let mut a: Vec<Vec<u32>> = crest.regions.iter().map(|r| signature(&r.rnn)).collect();
        let mut b: Vec<Vec<u32>> = full.regions.iter().map(|r| signature(&r.rnn)).collect();
        a.sort();
        a.dedup();
        b.sort();
        b.dedup();
        // CREST-A also labels empty-set gap regions between circle spans;
        // CREST only labels regions bounded by circle sides. Compare
        // non-empty signatures.
        a.retain(|s| !s.is_empty());
        b.retain(|s| !s.is_empty());
        assert_eq!(a, b, "seed {seed}");
        assert!(s_crest.labels <= s_full.labels);
    }
}

#[test]
fn monochromatic_mode_matches_oracle() {
    let (points, _) = workload(60, 0, 33);
    let arr = build_square_arrangement(&points, &[], Metric::Linf, Mode::Monochromatic).unwrap();
    let mut sink = CollectSink::default();
    let stats = crest_sweep(&arr, &CountMeasure, &mut sink);
    assert!(stats.labels > 0);
    for r in &sink.regions {
        if r.rect.width() < 1e-9 || r.rect.height() < 1e-9 {
            continue;
        }
        assert_eq!(signature(&r.rnn), rnn_at_square(&arr, r.rect.center()));
    }
}

#[test]
fn parallel_matches_sequential_on_workload() {
    let (clients, facilities) = workload(120, 12, 44);
    let arr =
        build_square_arrangement(&clients, &facilities, Metric::Linf, Mode::Bichromatic).unwrap();
    // Exact tiling comparison across slab counts.
    let mut seq = CollectSink::default();
    crest_a_sweep(&arr, &CountMeasure, &mut seq);
    for slabs in [2, 3, 8] {
        let (par, _) =
            parallel_crest_uncapped(&arr, &CountMeasure, slabs, true, CollectSink::default);
        assert_area_maps_equal(
            &area_by_signature(&seq.regions),
            &area_by_signature(&par.regions),
            1e-6,
        );
    }
    // Max-region agreement with optimal labeling.
    let mut max_seq = MaxSink::default();
    crest_sweep(&arr, &CountMeasure, &mut max_seq);
    let (max_par, _) = parallel_crest_uncapped(&arr, &CountMeasure, 4, false, MaxSink::default);
    assert_eq!(max_seq.best.unwrap().influence, max_par.best.unwrap().influence);
}

#[test]
fn dropped_zero_radius_clients_do_not_break_sweeps() {
    let (mut clients, facilities) = workload(30, 5, 55);
    // Duplicate some facilities as clients: zero NN distance.
    clients.push(facilities[0]);
    clients.push(facilities[1]);
    let arr =
        build_square_arrangement(&clients, &facilities, Metric::Linf, Mode::Bichromatic).unwrap();
    assert_eq!(arr.dropped, 2);
    let mut sink = CollectSink::default();
    let stats = crest_sweep(&arr, &CountMeasure, &mut sink);
    assert!(stats.labels > 0);
    for r in &sink.regions {
        assert!(!r.rnn.contains(&(30)), "dropped client must not appear");
        assert!(!r.rnn.contains(&(31)), "dropped client must not appear");
    }
}
