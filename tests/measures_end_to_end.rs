//! Influence measures exercised through the full pipeline: the Fig 3
//! taxi-sharing numbers, the capacity utility against an independent
//! recomputation, and post-processing consistency.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnn_heatmap::prelude::*;
use rnnhm_core::oracle::signature;
use rnnhm_index::KdTree;

/// The Fig 3 configuration used by the `taxi_sharing` example, with the
/// NN-circles derived from actual clients/facilities.
fn fig3() -> (Vec<Point>, Vec<Point>, ConnectivityMeasure) {
    let clients = vec![
        Point::new(4.0, 4.0), // o1
        Point::new(8.0, 4.0), // o2
        Point::new(2.0, 6.0), // o3
        Point::new(4.5, 6.5), // o4
    ];
    let facilities = vec![Point::new(2.0, 3.0), Point::new(8.0, 7.0)];
    let measure = ConnectivityMeasure::from_edges(4, &[(0, 1), (0, 3), (1, 3)]);
    (clients, facilities, measure)
}

#[test]
fn fig3_superimposition_ties_but_connectivity_separates() {
    let (clients, facilities, connectivity) = fig3();
    let arr =
        build_square_arrangement(&clients, &facilities, Metric::Linf, Mode::Bichromatic).unwrap();

    // Count measure: the two 3-overlap regions tie at heat 3.
    let mut count_sink = CollectSink::default();
    crest_sweep(&arr, &CountMeasure, &mut count_sink);
    let count_top = top_k(&count_sink.regions, 2);
    assert_eq!(count_top[0].influence, 3.0);
    assert_eq!(count_top[1].influence, 3.0);
    let sigs: Vec<Vec<u32>> = count_top.iter().map(|r| signature(&r.rnn)).collect();
    assert!(sigs.contains(&vec![0, 1, 3]), "{{o1,o2,o4}} region exists");
    assert!(sigs.contains(&vec![0, 2, 3]), "{{o1,o3,o4}} region exists");

    // Connectivity measure: only {o1,o2,o4} carries all three edges.
    let mut conn_sink = CollectSink::default();
    crest_sweep(&arr, &connectivity, &mut conn_sink);
    let conn_top = top_k(&conn_sink.regions, 2);
    assert_eq!(conn_top[0].influence, 3.0);
    assert_eq!(signature(&conn_top[0].rnn), vec![0, 1, 3]);
    assert!(conn_top[1].influence <= 1.0, "the foil region drops to heat 1");
}

/// Brute-force capacity utility: simulate the assignment after placing a
/// new facility that captures exactly `rnn`, then sum `min(cap, load)`.
fn capacity_oracle(assigned: &[u32], capacities: &[u32], new_capacity: u32, rnn: &[u32]) -> f64 {
    let mut load = vec![0u32; capacities.len()];
    for (o, &f) in assigned.iter().enumerate() {
        if !rnn.contains(&(o as u32)) {
            load[f as usize] += 1;
        }
    }
    let served: u32 = load.iter().zip(capacities).map(|(&l, &c)| l.min(c)).sum();
    served as f64 + (rnn.len() as u32).min(new_capacity) as f64
}

#[test]
fn capacity_measure_matches_brute_force_simulation() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..50 {
        let n_f = 1 + rng.random_range(0..5usize);
        let n_c = 1 + rng.random_range(0..20usize);
        let assigned: Vec<u32> = (0..n_c).map(|_| rng.random_range(0..n_f) as u32).collect();
        let capacities: Vec<u32> = (0..n_f).map(|_| rng.random_range(1..6)).collect();
        let new_capacity = rng.random_range(1..6);
        let measure = CapacityMeasure::new(assigned.clone(), capacities.clone(), new_capacity);
        // Random RNN subsets.
        for _ in 0..10 {
            let rnn: Vec<u32> = (0..n_c as u32).filter(|_| rng.random::<bool>()).collect();
            assert_eq!(
                measure.influence(&rnn),
                capacity_oracle(&assigned, &capacities, new_capacity, &rnn),
                "assigned {assigned:?} caps {capacities:?} rnn {rnn:?}"
            );
        }
    }
}

#[test]
fn capacity_measure_end_to_end_on_geometry() {
    // Full pipeline: geometry → assignment → measure → CREST; the best
    // region's influence must equal the brute-force simulation of its set.
    let mut rng = StdRng::seed_from_u64(42);
    let clients: Vec<Point> =
        (0..80).map(|_| Point::new(rng.random::<f64>() * 8.0, rng.random::<f64>() * 8.0)).collect();
    let facilities: Vec<Point> =
        (0..10).map(|_| Point::new(rng.random::<f64>() * 8.0, rng.random::<f64>() * 8.0)).collect();
    let tree = KdTree::build(&facilities);
    let assigned: Vec<u32> =
        clients.iter().map(|o| tree.nearest(o, Metric::L2).unwrap().0).collect();
    let capacities = vec![5u32; facilities.len()];
    let measure = CapacityMeasure::new(assigned.clone(), capacities.clone(), 8);

    let arr = build_disk_arrangement(&clients, &facilities, Mode::Bichromatic).unwrap();
    let (best, _) = crest_l2_max_region(&arr, &measure);
    let best = best.unwrap();
    assert_eq!(
        best.influence,
        capacity_oracle(&assigned, &capacities, 8, &best.rnn),
        "CREST-reported influence must equal the simulated utility"
    );
    assert!(best.influence >= measure.base_total(), "a new facility cannot hurt");
}

#[test]
fn weighted_measure_through_sweep() {
    let clients = vec![Point::new(1.0, 1.0), Point::new(2.0, 1.2), Point::new(8.0, 8.0)];
    let facilities = vec![Point::new(0.0, 0.0)];
    let weights = vec![2.5, 1.0, 10.0];
    let arr =
        build_square_arrangement(&clients, &facilities, Metric::Linf, Mode::Bichromatic).unwrap();
    let mut sink = CollectSink::default();
    crest_sweep(&arr, &WeightedMeasure::new(weights.clone()), &mut sink);
    for r in &sink.regions {
        let expect: f64 = r.rnn.iter().map(|&o| weights[o as usize]).sum();
        assert_eq!(r.influence, expect);
    }
}

#[test]
fn threshold_and_topk_are_consistent_with_collect() {
    let mut rng = StdRng::seed_from_u64(3);
    let clients: Vec<Point> =
        (0..60).map(|_| Point::new(rng.random::<f64>() * 5.0, rng.random::<f64>() * 5.0)).collect();
    let facilities: Vec<Point> =
        (0..6).map(|_| Point::new(rng.random::<f64>() * 5.0, rng.random::<f64>() * 5.0)).collect();
    let arr =
        build_square_arrangement(&clients, &facilities, Metric::Linf, Mode::Bichromatic).unwrap();

    let mut all = CollectSink::default();
    let mut top = TopKSink::new(3);
    let mut thresh = ThresholdSink::new(4.0);
    // One sweep into collect, then streaming sinks on separate sweeps
    // must agree with batch post-processing of the collected labels.
    crest_sweep(&arr, &CountMeasure, &mut all);
    crest_sweep(&arr, &CountMeasure, &mut top);
    crest_sweep(&arr, &CountMeasure, &mut thresh);

    let batch_top = top_k(&all.regions, 3);
    let stream_top = top.top();
    assert_eq!(batch_top.len(), stream_top.len());
    for (b, s) in batch_top.iter().zip(stream_top) {
        assert_eq!(b.influence, s.influence);
    }
    let batch_thresh = threshold(&all.regions, 4.0);
    assert_eq!(batch_thresh.len(), thresh.regions.len());
}
