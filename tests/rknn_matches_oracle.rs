//! RkNN differential suite (ISSUE 4 acceptance): for random `k` in
//! `2..=8`, heat maps built through the whole stack — kd-tree `k`-NN
//! queries, `k`-generic arrangement builders, the facade — must match a
//! **brute-force k-NN oracle** rebuild *bit for bit* along every output
//! path:
//!
//! * a one-shot `raster()` of a fixed spec,
//! * a `viewport()` served through the tile cache,
//! * the labeled regions (signature subset + top influences, the same
//!   notion `tests/edits_match_rebuild.rs` uses),
//!
//! and the same must hold **after random add/move/remove edit scripts**
//! (the incremental `k`-NN candidate-list maintenance vs a brute
//! rebuild over the post-edit facility set). The oracle sorts the full
//! per-client distance vector with `total_cmp` and takes the `k`-th
//! entry — no kd-tree, no heaps — and builds arrangements with the
//! same circle formulas the real builders use.
//!
//! A separate tie-guard proptest (the duplicate/tied-facility
//! satellite) checks the kd-tree's `k_nearest` radius against the
//! oracle on inputs full of duplicated points, for all three metrics:
//! when ties straddle the `k` cut, the *radius* must still be the
//! well-defined `k`-th smallest distance (the id set may legitimately
//! differ).
//!
//! (The vendored proptest stub only supports `ident in strategy`
//! bindings — tuples are bound whole and destructured inside.)

use proptest::prelude::*;
use rnn_heatmap::geom::transform::{l1_radius_to_linf, rotate45};
use rnn_heatmap::index::KdTree;
use rnn_heatmap::prelude::*;
use rnn_heatmap::{HeatMapBuilder, RnnHeatMap};
use rnnhm_core::crest::crest_sweep;
use rnnhm_core::crest_l2::crest_l2_sweep;
use rnnhm_geom::Circle;

/// One edit: `(op, x, y, pick)` — the same encoding as
/// `tests/edits_match_rebuild.rs`.
type Step = (u8, u32, u32, u32);

fn decode_point(x: u32, y: u32) -> Point {
    Point::new(x as f64 / 4.0 - 0.5, y as f64 / 4.0 - 0.5)
}

fn decode_points(raw: &[(u32, u32)]) -> Vec<Point> {
    raw.iter().map(|&(x, y)| decode_point(x, y)).collect()
}

/// Brute-force `k`-th NN distance: sort the whole distance vector,
/// take the `k`-th entry. Independent of the kd-tree by construction.
fn brute_kth_dist(o: &Point, facs: &[Point], metric: Metric, k: usize) -> f64 {
    let mut ds: Vec<f64> = facs.iter().map(|f| metric.dist(o, f)).collect();
    ds.sort_by(f64::total_cmp);
    ds[k - 1]
}

/// Builds the square k-NN-circle arrangement from brute-force radii,
/// mirroring the real builder's construction formulas and drop logic.
fn oracle_square(clients: &[Point], facs: &[Point], metric: Metric, k: usize) -> SquareArrangement {
    let mut squares = Vec::new();
    let mut owners = Vec::new();
    let mut dropped = 0usize;
    for (i, o) in clients.iter().enumerate() {
        let r = brute_kth_dist(o, facs, metric, k);
        if r <= 0.0 {
            dropped += 1;
            continue;
        }
        let (center, half) = match metric {
            Metric::Linf => (*o, r),
            Metric::L1 => (rotate45(*o), l1_radius_to_linf(r)),
            Metric::L2 => unreachable!("L2 uses the disk oracle"),
        };
        squares.push(Rect::centered(center, half));
        owners.push(i as u32);
    }
    let space = if metric == Metric::L1 { CoordSpace::Rotated45 } else { CoordSpace::Identity };
    SquareArrangement { squares, owners, space, n_clients: clients.len(), dropped, k }
}

/// Disk (L2) analog of [`oracle_square`].
fn oracle_disk(clients: &[Point], facs: &[Point], k: usize) -> DiskArrangement {
    let mut disks = Vec::new();
    let mut owners = Vec::new();
    let mut dropped = 0usize;
    for (i, o) in clients.iter().enumerate() {
        let r = brute_kth_dist(o, facs, Metric::L2, k);
        if r <= 0.0 {
            dropped += 1;
            continue;
        }
        disks.push(Circle::new(*o, r));
        owners.push(i as u32);
    }
    DiskArrangement { disks, owners, n_clients: clients.len(), dropped, k }
}

fn assert_bits(a: &HeatRaster, b: &HeatRaster, what: &str) {
    assert_eq!(a.spec, b.spec, "{what}: spec mismatch");
    for row in 0..a.spec.height {
        for col in 0..a.spec.width {
            assert!(
                a.get(col, row).to_bits() == b.get(col, row).to_bits(),
                "{what}: pixel ({col},{row}): stack {} vs oracle {}",
                a.get(col, row),
                b.get(col, row)
            );
        }
    }
}

/// Deduplicated (sorted RNN set, influence bits) signatures, skipping
/// empty-RNN labels (windowed edit resweeps label the uncovered face,
/// which a full sweep never emits — a consistent extra, not a bug).
fn signature_set(regions: &[LabeledRegion]) -> Vec<(Vec<u32>, u64)> {
    let mut out: Vec<(Vec<u32>, u64)> = Vec::new();
    for r in regions {
        if r.rnn.is_empty() {
            continue;
        }
        let mut sig = r.rnn.clone();
        sig.sort_unstable();
        let entry = (sig, r.influence.to_bits());
        if !out.contains(&entry) {
            out.push(entry);
        }
    }
    out
}

/// Top-`n` influence bit patterns over distinct non-empty signatures.
fn top_influences(regions: &[LabeledRegion], n: usize) -> Vec<u64> {
    let mut vals: Vec<u64> = signature_set(regions).into_iter().map(|(_, i)| i).collect();
    vals.sort_by(|a, b| f64::from_bits(*b).total_cmp(&f64::from_bits(*a)));
    vals.dedup();
    vals.truncate(n);
    vals
}

/// Compares every output path of `map` against the brute-force oracle
/// arrangement over `facs` (the map's *current* facility set).
fn assert_matches_oracle<M: IncrementalMeasure + Sync>(
    map: &RnnHeatMap<M>,
    clients: &[Point],
    facs: &[Point],
    metric: Metric,
    k: usize,
    measure: &M,
    what: &str,
) {
    let spec = GridSpec::new(44, 36, Rect::new(-1.0, 11.0, -1.0, 11.0));
    let vrect = Rect::new(0.7, 8.3, 0.9, 7.7);
    let (oracle_raster, oracle_regions) = match metric {
        Metric::L2 => {
            let arr = oracle_disk(clients, facs, k);
            let mut sink = CollectSink::default();
            crest_l2_sweep(&arr, measure, &mut sink);
            (rasterize_disks(&arr, measure, spec), sink.regions)
        }
        m => {
            let arr = oracle_square(clients, facs, m, k);
            let mut sink = CollectSink::default();
            crest_sweep(&arr, measure, &mut sink);
            (rasterize_squares(&arr, measure, spec), sink.regions)
        }
    };
    assert_bits(&map.raster(spec), &oracle_raster, &format!("{what}: one-shot raster"));

    let frame = map.viewport(vrect, 40, 40);
    let oracle_frame = match metric {
        Metric::L2 => rasterize_disks(&oracle_disk(clients, facs, k), measure, frame.spec),
        m => rasterize_squares(&oracle_square(clients, facs, m, k), measure, frame.spec),
    };
    assert_bits(&frame, &oracle_frame, &format!("{what}: viewport through tile cache"));

    // Region labels: every oracle signature must be represented in the
    // map's (possibly duplicate-carrying) label list, and the top
    // influence values must agree bitwise.
    map.with_regions(|ours| {
        let have = signature_set(ours);
        for sig in signature_set(&oracle_regions) {
            assert!(have.contains(&sig), "{what}: oracle signature {sig:?} missing from the map");
        }
        assert_eq!(
            top_influences(ours, 5),
            top_influences(&oracle_regions, 5),
            "{what}: top influences diverged from the oracle"
        );
    });
}

/// Applies a random edit script through the facade (removals that would
/// drop below `k` facilities error and are skipped).
fn apply_script<M: IncrementalMeasure + Sync>(map: &mut RnnHeatMap<M>, script: &[Step]) {
    for &(op, x, y, pick) in script {
        let p = decode_point(x, y);
        match op % 3 {
            0 => {
                map.add_facility(p).expect("bichromatic map accepts adds");
            }
            1 => {
                let facs = map.facilities();
                let id = facs[pick as usize % facs.len()].0;
                match map.remove_facility(id) {
                    Ok(_) | Err(EditError::TooFewFacilities) => {}
                    Err(e) => panic!("unexpected edit error {e}"),
                }
            }
            _ => {
                let facs = map.facilities();
                let id = facs[pick as usize % facs.len()].0;
                map.move_facility(id, p).expect("live facility moves");
            }
        }
    }
}

/// The shared differential body: build at `k`, compare every path to
/// the oracle, edit, compare again against an oracle over the post-edit
/// facility set.
fn run_case<M: IncrementalMeasure + Sync + Clone>(
    clients: &[Point],
    facs: &[Point],
    metric: Metric,
    k: usize,
    measure: M,
    script: &[Step],
    what: &str,
) {
    let mut map = HeatMapBuilder::bichromatic(clients.to_vec(), facs.to_vec())
        .metric(metric)
        .k(k)
        .tile_px(16)
        .build(measure.clone())
        .expect("k <= facility count by construction");
    let _ = map.stats(); // force the region sweep so edits maintain it
    assert_matches_oracle(&map, clients, facs, metric, k, &measure, &format!("{what}/pre-edit"));

    apply_script(&mut map, script);

    let facs_now: Vec<Point> = map.facilities().into_iter().map(|(_, p)| p).collect();
    assert!(facs_now.len() >= k, "edit guard keeps at least k facilities");
    assert_matches_oracle(
        &map,
        clients,
        &facs_now,
        metric,
        k,
        &measure,
        &format!("{what}/post-edit"),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_k_matches_oracle_count_and_weighted(
        raw_clients in prop::collection::vec((0u32..44, 0u32..44), 4..16),
        raw_facs in prop::collection::vec((0u32..44, 0u32..44), 8..12),
        k in 2usize..=8,
        script in prop::collection::vec((0u8..3, 0u32..44, 0u32..44, 0u32..8), 1..8),
    ) {
        let clients = decode_points(&raw_clients);
        let facs = decode_points(&raw_facs);
        // Dyadic weights: exact in any summation order, so bit-identity
        // is the right comparison for the float-valued measure too.
        let weights: Vec<f64> = (0..clients.len()).map(|i| (i % 9) as f64 * 0.25).collect();
        for metric in Metric::ALL {
            run_case(&clients, &facs, metric, k, CountMeasure, &script, "count");
            run_case(
                &clients,
                &facs,
                metric,
                k,
                WeightedMeasure::new(weights.clone()),
                &script,
                "weighted",
            );
        }
    }

    #[test]
    fn random_k_matches_oracle_capacity_and_connectivity(
        raw_clients in prop::collection::vec((0u32..44, 0u32..44), 4..12),
        raw_facs in prop::collection::vec((0u32..44, 0u32..44), 8..12),
        k in 2usize..=8,
        script in prop::collection::vec((0u8..3, 0u32..44, 0u32..44, 0u32..8), 1..6),
    ) {
        let clients = decode_points(&raw_clients);
        let facs = decode_points(&raw_facs);
        let n = clients.len();
        let nf = facs.len() as u32;
        let assigned: Vec<u32> = (0..n as u32).map(|i| i % nf).collect();
        let capacities: Vec<u32> = (0..nf).map(|f| 1 + f % 4).collect();
        let capacity = CapacityMeasure::new(assigned, capacities, 2);
        let edges: Vec<(u32, u32)> =
            (0..n as u32).flat_map(|a| [(a, (a + 1) % n as u32), (a, (a + 3) % n as u32)]).collect();
        let connectivity = ConnectivityMeasure::from_edges(n, &edges);
        for metric in Metric::ALL {
            run_case(&clients, &facs, metric, k, capacity.clone(), &script, "capacity");
            run_case(&clients, &facs, metric, k, connectivity.clone(), &script, "connectivity");
        }
    }

    /// Tie guard: on inputs dense with duplicated points (an 8×8 integer
    /// lattice, so facilities repeat constantly), the kd-tree's `k`-th
    /// NN distance must agree with the brute-force oracle *bitwise* for
    /// every k and metric — the radius is well-defined even when ties
    /// straddle the cut, where the id *set* legitimately is not.
    #[test]
    fn kth_radius_well_defined_under_duplicates(
        raw_facs in prop::collection::vec((0u32..8, 0u32..8), 2..24),
        raw_queries in prop::collection::vec((0u32..8, 0u32..8), 1..12),
    ) {
        let facs: Vec<Point> =
            raw_facs.iter().map(|&(x, y)| Point::new(x as f64, y as f64)).collect();
        let queries: Vec<Point> =
            raw_queries.iter().map(|&(x, y)| Point::new(x as f64, y as f64)).collect();
        let tree = KdTree::build(&facs);
        for metric in Metric::ALL {
            for q in &queries {
                for k in 1..=facs.len() {
                    let got = tree.k_nearest(q, metric, k);
                    prop_assert_eq!(got.len(), k);
                    let kd_radius = got[k - 1].1;
                    let brute = brute_kth_dist(q, &facs, metric, k);
                    prop_assert_eq!(
                        kd_radius.to_bits(),
                        brute.to_bits(),
                        "metric {:?} k {}: kd {} vs brute {}",
                        metric,
                        k,
                        kd_radius,
                        brute
                    );
                    // Distances within the set are sorted ascending.
                    for w in got.windows(2) {
                        prop_assert!(w[0].1 <= w[1].1);
                    }
                }
            }
        }
    }
}

/// The same tie guard through the arrangement builders: duplicated
/// clients *and* facilities, radii checked against the oracle bitwise.
#[test]
fn duplicate_heavy_arrangements_match_oracle() {
    // A 4×4 lattice visited twice: every point duplicated.
    let pts: Vec<Point> =
        (0..32).map(|i| Point::new((i % 4) as f64 * 2.0, ((i / 4) % 4) as f64 * 2.0)).collect();
    let clients: Vec<Point> = pts.iter().take(20).copied().collect();
    let facs: Vec<Point> = pts.iter().skip(8).take(12).copied().collect();
    for k in [1usize, 2, 3, 7, 12] {
        for metric in Metric::ALL {
            let spec = GridSpec::new(32, 32, Rect::new(-1.0, 9.0, -1.0, 9.0));
            let map = HeatMapBuilder::bichromatic(clients.clone(), facs.clone())
                .metric(metric)
                .k(k)
                .build(CountMeasure)
                .unwrap();
            let oracle = match metric {
                Metric::L2 => {
                    rasterize_disks(&oracle_disk(&clients, &facs, k), &CountMeasure, spec)
                }
                m => rasterize_squares(&oracle_square(&clients, &facs, m, k), &CountMeasure, spec),
            };
            assert_bits(&map.raster(spec), &oracle, &format!("duplicates {metric:?} k={k}"));
        }
    }
}
