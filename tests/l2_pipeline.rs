//! End-to-end checks of the L2 path: arrangement → CREST-L2 → oracle,
//! the max-region task against the pruning comparator, and the
//! monochromatic λ bound.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnn_heatmap::prelude::*;
use rnnhm_core::crest_l2::crest_l2_full_sweep;
use rnnhm_core::oracle::{rnn_at_disk, signature};
use rnnhm_core::pruning::PruningStats;

fn workload(n_clients: usize, n_facilities: usize, seed: u64) -> (Vec<Point>, Vec<Point>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pt = || Point::new(rng.random::<f64>() * 10.0, rng.random::<f64>() * 10.0);
    ((0..n_clients).map(|_| pt()).collect(), (0..n_facilities).map(|_| pt()).collect())
}

/// Skips labels whose witness sits within float resolution of a circle
/// boundary (hairline slivers — undecidable in f64).
fn check_against_oracle(arr: &DiskArrangement, regions: &[LabeledRegion]) -> usize {
    let mut checked = 0;
    for r in regions {
        let c = r.rect.center();
        if arr.disks.iter().any(|d| (d.c.dist2(&c) - d.r).abs() < 1e-9) {
            continue;
        }
        assert_eq!(signature(&r.rnn), rnn_at_disk(arr, c), "at {c:?}");
        checked += 1;
    }
    checked
}

#[test]
fn crest_l2_matches_oracle_on_workloads() {
    for seed in 0..4 {
        let (clients, facilities) = workload(60, 6, seed);
        let arr = build_disk_arrangement(&clients, &facilities, Mode::Bichromatic).unwrap();
        let mut sink = CollectSink::default();
        let stats = crest_l2_sweep(&arr, &CountMeasure, &mut sink);
        assert!(stats.labels as usize >= arr.len());
        let checked = check_against_oracle(&arr, &sink.regions);
        assert!(checked * 2 >= sink.regions.len(), "too many ambiguous labels");
    }
}

#[test]
fn optimized_and_full_l2_sweeps_agree_on_signatures() {
    let (clients, facilities) = workload(40, 5, 9);
    let arr = build_disk_arrangement(&clients, &facilities, Mode::Bichromatic).unwrap();
    let mut a = CollectSink::default();
    let mut b = CollectSink::default();
    let s_opt = crest_l2_sweep(&arr, &CountMeasure, &mut a);
    let s_full = crest_l2_full_sweep(&arr, &CountMeasure, &mut b);
    let mut sa: Vec<Vec<u32>> = a.regions.iter().map(|r| signature(&r.rnn)).collect();
    let mut sb: Vec<Vec<u32>> = b.regions.iter().map(|r| signature(&r.rnn)).collect();
    sa.sort();
    sa.dedup();
    sb.sort();
    sb.dedup();
    sa.retain(|s| !s.is_empty());
    sb.retain(|s| !s.is_empty());
    assert_eq!(sa, sb);
    assert!(s_opt.labels <= s_full.labels, "optimized sweep must label no more");
}

#[test]
fn pruning_agrees_with_crest_on_max_region() {
    for seed in 10..14 {
        let (clients, facilities) = workload(40, 8, seed);
        let arr = build_disk_arrangement(&clients, &facilities, Mode::Bichromatic).unwrap();
        let (c_best, _) = crest_l2_max_region(&arr, &CountMeasure);
        let (p_best, pstats): (_, PruningStats) =
            pruning_max_region(&arr, &CountMeasure, PruningConfig::default());
        let c = c_best.unwrap();
        let p = p_best.unwrap();
        if pstats.truncated {
            assert!(p.influence <= c.influence + 1e-9, "truncated run is a lower bound");
        } else {
            assert_eq!(p.influence, c.influence, "seed {seed}");
        }
    }
}

#[test]
fn max_region_dominates_every_label() {
    let (clients, facilities) = workload(50, 10, 21);
    let arr = build_disk_arrangement(&clients, &facilities, Mode::Bichromatic).unwrap();
    let mut all = CollectSink::default();
    crest_l2_sweep(&arr, &CountMeasure, &mut all);
    let (best, _) = crest_l2_max_region(&arr, &CountMeasure);
    let best = best.unwrap().influence;
    for r in &all.regions {
        assert!(r.influence <= best);
    }
}

#[test]
fn monochromatic_l2_rnn_sets_are_bounded_by_six() {
    // Korn & Muthukrishnan: a monochromatic L2 RNN set has at most six
    // members (paper §VII-A uses this for the λ = O(1) complexity).
    for seed in 30..34 {
        let (points, _) = workload(100, 0, seed);
        let arr = build_disk_arrangement(&points, &[], Mode::Monochromatic).unwrap();
        let mut sink = NullSink;
        let stats = crest_l2_sweep(&arr, &CountMeasure, &mut sink);
        assert!(
            stats.max_rnn <= 6,
            "monochromatic λ = {} exceeds the theoretical bound 6 (seed {seed})",
            stats.max_rnn
        );
    }
}

#[test]
fn l2_raster_agrees_with_labels() {
    let (clients, facilities) = workload(30, 4, 40);
    let arr = build_disk_arrangement(&clients, &facilities, Mode::Bichromatic).unwrap();
    let spec = GridSpec::new(48, 48, Rect::new(0.0, 10.0, 0.0, 10.0));
    let raster = rasterize_disks(&arr, &CountMeasure, spec);
    // Every pixel's raster value equals the oracle count at its center.
    for row in 0..spec.height {
        for col in 0..spec.width {
            let p = spec.pixel_center(col, row);
            let expect = rnn_at_disk(&arr, p).len() as f64;
            assert_eq!(raster.get(col, row), expect, "pixel ({col},{row})");
        }
    }
}
