//! Regression pin for the `postprocess::top_k` tie-break contract
//! (ISSUE 7 satellite): ties are broken by *first occurrence* of the
//! RNN-set signature in emission order, and within one signature the
//! first region achieving the maximum influence is the one kept
//! (strictly-greater replacement). The placement engine replicates
//! this ordering in its pruned ranking, so the contract is pinned both
//! on a crafted label list and on a real multi-tie arrangement.

use rnn_heatmap::prelude::*;

fn region(i: usize, rnn: &[u32], influence: f64) -> LabeledRegion {
    // The rect encodes the emission index so the test can tell *which*
    // occurrence of a duplicated signature survived.
    let x = i as f64;
    LabeledRegion { rect: Rect::new(x, x + 1.0, 0.0, 1.0), rnn: rnn.to_vec(), influence }
}

fn sig(rnn: &[u32]) -> Vec<u32> {
    let mut s = rnn.to_vec();
    s.sort_unstable();
    s.dedup();
    s
}

/// The contract, spelled out naively: distinct signatures in
/// first-occurrence order, each represented by the first region
/// achieving its maximum influence, stably sorted by influence
/// descending.
fn naive_top_k(regions: &[LabeledRegion], k: usize) -> Vec<LabeledRegion> {
    let mut sigs: Vec<Vec<u32>> = Vec::new();
    let mut best: Vec<usize> = Vec::new();
    for (i, r) in regions.iter().enumerate() {
        let s = sig(&r.rnn);
        match sigs.iter().position(|t| *t == s) {
            Some(slot) => {
                if regions[best[slot]].influence < r.influence {
                    best[slot] = i;
                }
            }
            None => {
                sigs.push(s);
                best.push(i);
            }
        }
    }
    let mut picked: Vec<LabeledRegion> = best.into_iter().map(|i| regions[i].clone()).collect();
    picked.sort_by(|a, b| b.influence.partial_cmp(&a.influence).expect("finite"));
    picked.truncate(k);
    picked
}

#[test]
fn tiebreak_is_first_occurrence_order() {
    let regions = vec![
        region(0, &[7], 2.0),
        region(1, &[1, 2], 5.0),
        region(2, &[3], 5.0),
        region(3, &[2, 1], 4.0), // duplicate signature, lower: ignored
        region(4, &[4], 5.0),
        region(5, &[3], 5.0), // duplicate, equal: first occurrence kept
        region(6, &[5], 1.0),
        region(7, &[4], 6.0), // duplicate, higher: replaces the value,
                              // but the slot keeps its original rank
    ];
    let top = top_k(&regions, 10);
    let got: Vec<(Vec<u32>, f64, f64)> =
        top.iter().map(|r| (sig(&r.rnn), r.influence, r.rect.x_lo)).collect();
    assert_eq!(
        got,
        vec![
            (vec![4], 6.0, 7.0),    // unique max, taken from emission index 7
            (vec![1, 2], 5.0, 1.0), // 5.0-tie broken by first occurrence:
            (vec![3], 5.0, 2.0),    //   slot order 1 then 2, NOT sort order
            (vec![7], 2.0, 0.0),
            (vec![5], 1.0, 6.0),
        ]
    );
    // Truncation happens after the tie-break, so a k that slices
    // through the tie keeps the earliest slots.
    let top2 = top_k(&regions, 2);
    assert_eq!(sig(&top2[1].rnn), vec![1, 2]);
}

#[test]
fn matches_naive_reference_on_tie_heavy_input() {
    // Tie-heavy pseudo-random list: few influence values, few
    // signatures, many duplicates.
    let mut state = 0x5eed_u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let pool: [&[u32]; 6] = [&[0], &[1], &[0, 1], &[2], &[1, 2], &[0, 2]];
    let regions: Vec<LabeledRegion> =
        (0..200).map(|i| region(i, pool[next() % pool.len()], (next() % 3) as f64 + 1.0)).collect();
    for k in [1, 2, 4, 6, 10] {
        let got = top_k(&regions, k);
        let want = naive_top_k(&regions, k);
        assert_eq!(got.len(), want.len(), "k={k}");
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(sig(&g.rnn), sig(&w.rnn), "k={k}: signature order");
            assert_eq!(g.influence.to_bits(), w.influence.to_bits(), "k={k}");
            assert_eq!(g.rect.x_lo, w.rect.x_lo, "k={k}: same surviving occurrence");
        }
    }
}

/// A real arrangement with two far-apart facility clusters whose
/// pairwise overlaps tie at influence 2 and whose singleton regions
/// tie at influence 1: `top_k` over the sweep's emission must order
/// each tie class by first emission, and the placement engine's pruned
/// ranking must reproduce that order exactly.
#[test]
fn arrangement_ties_order_by_emission_and_placement_agrees() {
    let clients = vec![
        Point::new(1.0, 0.0),   // A: circle [0,2]x[-1,1]
        Point::new(0.0, 1.0),   // B: circle [-1,1]x[0,2], overlaps A
        Point::new(101.0, 0.0), // C: mirrored cluster at x=100
        Point::new(100.0, 1.0), // D
    ];
    let facilities = vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)];
    let arr = build_square_arrangement_k(&clients, &facilities, Metric::Linf, Mode::Bichromatic, 1)
        .expect("buildable");
    let mut sink = CollectSink::default();
    crest_sweep(&arr, &CountMeasure, &mut sink);

    // First-occurrence order of the distinct signatures, as emitted.
    let mut emitted: Vec<Vec<u32>> = Vec::new();
    for r in &sink.regions {
        let s = sig(&r.rnn);
        if !emitted.contains(&s) {
            emitted.push(s);
        }
    }
    assert_eq!(emitted.len(), 6, "4 singleton + 2 pairwise-overlap regions");

    let top = top_k(&sink.regions, 6);
    assert_eq!(top[0].influence, 2.0);
    assert_eq!(top[1].influence, 2.0);
    let pairs: Vec<Vec<u32>> = emitted.iter().filter(|s| s.len() == 2).cloned().collect();
    let singles: Vec<Vec<u32>> = emitted.iter().filter(|s| s.len() == 1).cloned().collect();
    let got: Vec<Vec<u32>> = top.iter().map(|r| sig(&r.rnn)).collect();
    assert_eq!(&got[..2], &pairs[..], "influence-2 tie follows emission order");
    assert_eq!(&got[2..], &singles[..], "influence-1 tie follows emission order");

    // The placement engine ranks the same regions through its pruned
    // bound-descending path; its order must match `top_k` exactly.
    let snap = ArrangementSnapshot::build_k(
        clients.clone(),
        facilities.clone(),
        Metric::Linf,
        Mode::Bichromatic,
        1,
    )
    .expect("buildable");
    let placements = PlacementQuery::new(&snap, &CountMeasure).top_placements(6);
    let placed: Vec<(Vec<u32>, f64)> =
        placements.iter().map(|p| (p.rnn.clone(), p.influence)).collect();
    let want: Vec<(Vec<u32>, f64)> = top.iter().map(|r| (sig(&r.rnn), r.influence)).collect();
    assert_eq!(placed, want, "placement ranking replicates top_k tie-break");
}
