//! Differential property tests for what-if editing (ISSUE 3
//! acceptance): after *any* random script of insert / remove / move
//! facility edits, the edited map is **bit-identical** to a
//! from-scratch rebuild over the resulting facility set, along every
//! path that renders or queries it:
//!
//! * a one-shot `raster()` of a fixed spec,
//! * a full-frame raster held across the edits and repaired in place
//!   with `refresh_raster` (the scanline dirty-rect path),
//! * a `viewport()` served through the (partially invalidated,
//!   partially re-keyed) tile cache,
//! * the maintained labeled regions' maximum influence.
//!
//! Covered across all three metrics (square and disk arrangements) and
//! the four paper measures; weights are dyadic rationals so every
//! measure is an order-insensitive exact computation and bit-equality
//! is the right notion of "same heat map".
//!
//! (The vendored proptest stub only supports `ident in strategy`
//! bindings — tuples are bound whole and destructured inside.)

use proptest::prelude::*;
use rnn_heatmap::prelude::*;
use rnn_heatmap::{HeatMapBuilder, RnnHeatMap};

/// One edit: `(op, x, y, pick)` decoded by [`apply_script`].
type Step = (u8, u32, u32, u32);

fn assert_bits(a: &HeatRaster, b: &HeatRaster, what: &str) {
    assert_eq!(a.spec, b.spec, "{what}: spec mismatch");
    for row in 0..a.spec.height {
        for col in 0..a.spec.width {
            assert!(
                a.get(col, row).to_bits() == b.get(col, row).to_bits(),
                "{what}: pixel ({col},{row}): edited {} vs rebuilt {}",
                a.get(col, row),
                b.get(col, row)
            );
        }
    }
}

fn decode_point(x: u32, y: u32) -> Point {
    Point::new(x as f64 / 4.0 - 0.5, y as f64 / 4.0 - 0.5)
}

/// Applies the script through the facade, repairing `held` with each
/// edit's dirty region. Skipped steps (removing the last facility)
/// must error, not panic.
fn apply_script<M: IncrementalMeasure + Sync>(
    map: &mut RnnHeatMap<M>,
    script: &[Step],
    held: &mut HeatRaster,
) {
    for &(op, x, y, pick) in script {
        let p = decode_point(x, y);
        let dirty = match op % 3 {
            0 => map.add_facility(p).expect("bichromatic map accepts adds").1,
            1 => {
                let facs = map.facilities();
                let id = facs[pick as usize % facs.len()].0;
                match map.remove_facility(id) {
                    Ok(d) => d,
                    Err(EditError::TooFewFacilities) => continue,
                    Err(e) => panic!("unexpected edit error {e}"),
                }
            }
            _ => {
                let facs = map.facilities();
                let id = facs[pick as usize % facs.len()].0;
                map.move_facility(id, p).expect("live facility moves")
            }
        };
        map.refresh_raster(held, &dirty);
    }
}

/// The shared differential body: build, warm every cache, edit, then
/// compare all paths against a clean rebuild.
fn run_case<M: IncrementalMeasure + Sync + Clone>(
    clients: &[Point],
    facilities: &[Point],
    metric: Metric,
    measure: M,
    script: &[Step],
    what: &str,
) {
    let mut map = match HeatMapBuilder::bichromatic(clients.to_vec(), facilities.to_vec())
        .metric(metric)
        .tile_px(16)
        .build(measure.clone())
    {
        Ok(m) => m,
        Err(_) => return, // degenerate instance (e.g. no clients)
    };
    let spec = GridSpec::new(48, 40, Rect::new(-1.0, 11.0, -1.0, 11.0));
    let mut held = map.raster(spec);
    let _ = map.stats(); // force the region sweep so edits maintain it
    let vrect = Rect::new(0.7, 8.3, 0.9, 7.7);
    let _ = map.viewport(vrect, 40, 40); // warm the tile cache pre-edit

    apply_script(&mut map, script, &mut held);

    let rebuilt = HeatMapBuilder::bichromatic(
        clients.to_vec(),
        map.facilities().into_iter().map(|(_, p)| p).collect(),
    )
    .metric(metric)
    .build(measure)
    .expect("facility set never empties");

    let fresh = rebuilt.raster(spec);
    assert_bits(&map.raster(spec), &fresh, &format!("{what}: one-shot raster"));
    assert_bits(&held, &fresh, &format!("{what}: refreshed held raster"));

    let frame = map.viewport(vrect, 40, 40);
    let one_shot = rebuilt.raster(frame.spec);
    assert_bits(&frame, &one_shot, &format!("{what}: viewport through edited cache"));

    // The maintained label list must keep *every* region represented:
    // the top influence values over deduplicated RNN signatures agree
    // with a clean full sweep. This is what catches dropped labels
    // whose region was never relabeled (regression: the windowed
    // resweep used to cover only the dirty bbox, losing the part of a
    // dropped label outside it). Empty-RNN labels are skipped on both
    // sides: the windowed resweep labels the uncovered face inside its
    // window, which a full sweep never emits — a consistent extra
    // label, not a divergence.
    let ours = top_influences(&map.regions(), 5, what);
    let theirs = top_influences(&rebuilt.regions(), 5, what);
    assert_eq!(ours, theirs, "{what}: top influences diverged (maintained vs rebuilt label lists)");
    // Stronger: every (RNN set, influence) signature the rebuild's
    // full sweep labels must be represented in the maintained list —
    // incremental maintenance may add consistent duplicates but must
    // never lose a region.
    map.with_regions(|ours| {
        rebuilt.with_regions(|theirs| {
            let have = signature_set(ours);
            for sig in signature_set(theirs) {
                assert!(
                    have.contains(&sig),
                    "{what}: rebuilt signature {sig:?} lost from the maintained label list"
                );
            }
        })
    });
}

/// Deduplicated (sorted RNN set, influence bits) signatures of a label
/// list, skipping empty-RNN labels (see [`run_case`]).
fn signature_set(regions: &[LabeledRegion]) -> Vec<(Vec<u32>, u64)> {
    let mut out: Vec<(Vec<u32>, u64)> = Vec::new();
    for r in regions {
        if r.rnn.is_empty() {
            continue;
        }
        let mut sig = r.rnn.clone();
        sig.sort_unstable();
        let entry = (sig, r.influence.to_bits());
        if !out.contains(&entry) {
            out.push(entry);
        }
    }
    out
}

/// Top-`k` influence values over distinct non-empty RNN signatures,
/// asserting en route that duplicate labels of the same signature carry
/// identical influence bits.
fn top_influences(regions: &[LabeledRegion], k: usize, what: &str) -> Vec<u64> {
    let mut seen: Vec<(Vec<u32>, u64)> = Vec::new();
    for r in regions {
        if r.rnn.is_empty() {
            continue;
        }
        let mut sig = r.rnn.clone();
        sig.sort_unstable();
        match seen.iter().find(|(s, _)| *s == sig) {
            Some((_, influence)) => assert_eq!(
                *influence,
                r.influence.to_bits(),
                "{what}: one RNN set, two influences ({sig:?})"
            ),
            None => seen.push((sig, r.influence.to_bits())),
        }
    }
    let mut vals: Vec<u64> = seen.into_iter().map(|(_, i)| i).collect();
    vals.sort_by(|a, b| f64::from_bits(*b).total_cmp(&f64::from_bits(*a)));
    vals.truncate(k);
    vals
}

fn decode_points(raw: &[(u32, u32)]) -> Vec<Point> {
    raw.iter().map(|&(x, y)| decode_point(x, y)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn random_edit_scripts_match_rebuild_count(
        raw_clients in prop::collection::vec((0u32..44, 0u32..44), 3..18),
        raw_facs in prop::collection::vec((0u32..44, 0u32..44), 1..4),
        script in prop::collection::vec((0u8..3, 0u32..44, 0u32..44, 0u32..8), 1..10),
    ) {
        let clients = decode_points(&raw_clients);
        let facs = decode_points(&raw_facs);
        for metric in Metric::ALL {
            run_case(&clients, &facs, metric, CountMeasure, &script, "count");
        }
    }

    #[test]
    fn random_edit_scripts_match_rebuild_weighted(
        raw_clients in prop::collection::vec((0u32..44, 0u32..44), 3..18),
        raw_facs in prop::collection::vec((0u32..44, 0u32..44), 1..4),
        script in prop::collection::vec((0u8..3, 0u32..44, 0u32..44, 0u32..8), 1..10),
    ) {
        let clients = decode_points(&raw_clients);
        let facs = decode_points(&raw_facs);
        // Dyadic weights: exact sums in any order, so bit-identity is
        // the right comparison even for a float-valued measure.
        let weights: Vec<f64> = (0..clients.len()).map(|i| (i % 9) as f64 * 0.25).collect();
        for metric in Metric::ALL {
            run_case(&clients, &facs, metric, WeightedMeasure::new(weights.clone()), &script, "weighted");
        }
    }

    #[test]
    fn random_edit_scripts_match_rebuild_capacity_and_connectivity(
        raw_clients in prop::collection::vec((0u32..44, 0u32..44), 3..14),
        raw_facs in prop::collection::vec((0u32..44, 0u32..44), 1..4),
        script in prop::collection::vec((0u8..3, 0u32..44, 0u32..44, 0u32..8), 1..8),
    ) {
        let clients = decode_points(&raw_clients);
        let facs = decode_points(&raw_facs);
        let n = clients.len();
        // Measure parameters describe the *initial* assignment — they
        // are data, not live facility state, so the rebuilt map uses
        // the identical measure.
        let nf = facs.len() as u32;
        let assigned: Vec<u32> = (0..n as u32).map(|i| i % nf).collect();
        let capacities: Vec<u32> = (0..nf).map(|f| 1 + f % 4).collect();
        let capacity = CapacityMeasure::new(assigned, capacities, 2);
        let edges: Vec<(u32, u32)> =
            (0..n as u32).flat_map(|a| [(a, (a + 1) % n as u32), (a, (a + 3) % n as u32)]).collect();
        let connectivity = ConnectivityMeasure::from_edges(n, &edges);
        for metric in Metric::ALL {
            run_case(&clients, &facs, metric, capacity.clone(), &script, "capacity");
            run_case(&clients, &facs, metric, connectivity.clone(), &script, "connectivity");
        }
    }
}

/// A fixed, deterministic scenario exercising every op and every
/// measure, including drop/regrow transitions (a facility lands exactly
/// on a client, then moves away).
#[test]
fn scripted_scenario_all_measures_all_metrics() {
    let clients: Vec<Point> = (0..24)
        .map(|i| Point::new((i % 6) as f64 * 1.7 + 0.2, (i / 6) as f64 * 2.1 + 0.4))
        .collect();
    let facs = vec![Point::new(1.0, 1.0), Point::new(7.0, 6.0)];
    // add on a client (drops its circle), move that facility away
    // (regrows it), remove one, add two more, move across the map.
    let script: Vec<Step> = vec![
        (0, 6, 10, 0),  // add at (1.0, 2.0)... decoded (6/4-0.5, 10/4-0.5) = (1.0, 2.0)
        (0, 2, 2, 0),   // add at (0.0, 0.0)
        (2, 30, 30, 2), // move someone to (7.0, 7.0)
        (1, 0, 0, 1),   // remove
        (0, 14, 4, 0),  // add at (3.0, 0.5)
        (2, 2, 2, 3),   // move to (0.0, 0.0)
        (1, 0, 0, 0),   // remove
        (0, 22, 18, 0), // add at (5.0, 4.0)
    ];
    let n = clients.len();
    let weights: Vec<f64> = (0..n).map(|i| (i % 7) as f64 * 0.5).collect();
    let assigned: Vec<u32> = (0..n as u32).map(|i| i % 2).collect();
    let capacity = CapacityMeasure::new(assigned, vec![3, 5], 2);
    let edges: Vec<(u32, u32)> = (0..n as u32).map(|a| (a, (a + 5) % n as u32)).collect();
    let connectivity = ConnectivityMeasure::from_edges(n, &edges);
    for metric in Metric::ALL {
        run_case(&clients, &facs, metric, CountMeasure, &script, "scripted/count");
        run_case(
            &clients,
            &facs,
            metric,
            WeightedMeasure::new(weights.clone()),
            &script,
            "scripted/weighted",
        );
        run_case(&clients, &facs, metric, capacity.clone(), &script, "scripted/capacity");
        run_case(&clients, &facs, metric, connectivity.clone(), &script, "scripted/connectivity");
    }
}

/// After an edit, *every* RNN signature a from-scratch rebuild labels
/// must still be represented in the maintained list (regression: a
/// dropped straddling label used to lose the part of its region
/// outside the dirty window, because the resweep only covered the
/// dirty bbox — labels wide NN-circles produce are the trigger, so
/// this uses few facilities and full-set comparison rather than
/// top-k).
#[test]
fn maintained_labels_cover_every_rebuilt_signature() {
    let mut state = 0xfeed_u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64) * 10.0
    };
    let clients: Vec<Point> = (0..50).map(|_| Point::new(next(), next())).collect();
    let facs: Vec<Point> = (0..5).map(|_| Point::new(next(), next())).collect();
    for metric in [Metric::Linf, Metric::L1] {
        for remove_pick in 0..5u32 {
            let mut map = HeatMapBuilder::bichromatic(clients.clone(), facs.clone())
                .metric(metric)
                .build(CountMeasure)
                .unwrap();
            let _ = map.stats(); // compute regions before the edit
            let id = map.facilities()[remove_pick as usize].0;
            map.remove_facility(id).unwrap();
            let rebuilt = HeatMapBuilder::bichromatic(
                clients.clone(),
                map.facilities().into_iter().map(|(_, p)| p).collect(),
            )
            .metric(metric)
            .build(CountMeasure)
            .unwrap();
            let ours = map.with_regions(signature_set);
            let theirs = rebuilt.with_regions(signature_set);
            for sig in &theirs {
                assert!(
                    ours.contains(sig),
                    "{metric:?}, remove {remove_pick}: rebuilt signature {sig:?} lost from the \
                     maintained label list"
                );
            }
        }
    }
}

/// A facility placed exactly on every client of a cluster erases all
/// their circles; removing it restores the exact pre-edit heat map —
/// the strongest "undo" check.
#[test]
fn add_then_remove_is_bitwise_undo() {
    let clients = vec![
        Point::new(1.0, 1.0),
        Point::new(2.0, 2.0),
        Point::new(8.0, 8.0),
        Point::new(9.0, 7.0),
    ];
    let facs = vec![Point::new(5.0, 5.0)];
    for metric in Metric::ALL {
        let mut map = HeatMapBuilder::bichromatic(clients.clone(), facs.clone())
            .metric(metric)
            .tile_px(16)
            .build(CountMeasure)
            .unwrap();
        let spec = GridSpec::new(40, 40, Rect::new(0.0, 10.0, 0.0, 10.0));
        let before = map.raster(spec);
        let mut held = before.clone();
        let (id, d1) = map.add_facility(Point::new(1.0, 1.0)).unwrap();
        map.refresh_raster(&mut held, &d1);
        let d2 = map.remove_facility(id).unwrap();
        map.refresh_raster(&mut held, &d2);
        assert_bits(&map.raster(spec), &before, "undo one-shot");
        assert_bits(&held, &before, "undo refreshed");
        assert_eq!(map.n_facilities(), 1);
    }
}
