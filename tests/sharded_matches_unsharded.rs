//! Differential suite for the sharded arrangement build: a sharded
//! snapshot must be **bit-identical** to the unsharded one everywhere
//! it can be observed — restricted sub-arrangements, viewport rasters,
//! top-k regions, placement argmaxes — at every shard count, for every
//! metric, before and after edits. Sharding is a *routing* and
//! *summary* layer; it must never change a pixel.

use rnn_heatmap::prelude::*;
use rnn_heatmap::HeatMapBuilder;

const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

fn pseudo_points(n: usize, seed: u64, span: f64) -> Vec<Point> {
    rnn_heatmap::data::uniform(n, Rect::new(0.0, span, 0.0, span), seed)
}

fn build_snapshot(metric: Metric, k: usize, shards: Option<usize>) -> ArrangementSnapshot {
    let clients = pseudo_points(300, 41, 10.0);
    let facilities = pseudo_points(40, 43, 10.0);
    match shards {
        Some(n) => ArrangementSnapshot::build_k_sharded(
            clients,
            facilities,
            metric,
            Mode::Bichromatic,
            k,
            n,
        )
        .expect("valid instance"),
        None => ArrangementSnapshot::build_k(clients, facilities, metric, Mode::Bichromatic, k)
            .expect("valid instance"),
    }
}

/// The observable content of a restriction, for exact comparison.
fn restricted_signature(r: &RestrictedArrangement) -> Vec<(u32, [u64; 4])> {
    match r {
        RestrictedArrangement::Square(arr) => arr
            .squares
            .iter()
            .zip(&arr.owners)
            .map(|(s, &o)| {
                (o, [s.x_lo.to_bits(), s.x_hi.to_bits(), s.y_lo.to_bits(), s.y_hi.to_bits()])
            })
            .collect(),
        RestrictedArrangement::Disk(arr) => arr
            .disks
            .iter()
            .zip(&arr.owners)
            .map(|(d, &o)| (o, [d.c.x.to_bits(), d.c.y.to_bits(), d.r.to_bits(), 0]))
            .collect(),
    }
}

#[test]
fn restrictions_are_bit_identical_across_shard_counts() {
    let windows = [
        Rect::new(0.0, 10.0, 0.0, 10.0),
        Rect::new(2.0, 4.5, 1.0, 9.0),
        Rect::new(7.9, 8.0, 0.1, 0.2),
        Rect::new(-5.0, -1.0, -5.0, -1.0), // off-data window
    ];
    for metric in [Metric::L2, Metric::Linf, Metric::L1] {
        for k in [1usize, 4] {
            let plain = build_snapshot(metric, k, None);
            for n_shards in SHARD_COUNTS {
                let sharded = build_snapshot(metric, k, Some(n_shards));
                assert!(sharded.shards().is_some(), "shard map must be present");
                for w in windows {
                    assert_eq!(
                        restricted_signature(&plain.restrict_to(w)),
                        restricted_signature(&sharded.restrict_to(w)),
                        "{metric:?} k={k} shards={n_shards} window {w:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn sharded_fingerprint_is_deterministic_and_distinct() {
    let a = build_snapshot(Metric::Linf, 1, Some(4));
    let b = build_snapshot(Metric::Linf, 1, Some(4));
    assert_eq!(a.fingerprint(), b.fingerprint(), "same build must fingerprint identically");
    let plain = build_snapshot(Metric::Linf, 1, None);
    assert_ne!(
        a.fingerprint(),
        plain.fingerprint(),
        "sharded snapshots compose per-shard fingerprints into a distinct lineage"
    );
}

fn build_engine(shards: Option<usize>) -> rnn_heatmap::ExplorationEngine<CountMeasure> {
    let clients = pseudo_points(400, 7, 10.0);
    let facilities = pseudo_points(50, 9, 10.0);
    let mut b = HeatMapBuilder::bichromatic(clients, facilities).metric(Metric::Linf).tile_px(16);
    if let Some(n) = shards {
        b = b.shards(n);
    }
    b.build_engine(CountMeasure).expect("valid instance")
}

#[test]
fn viewports_and_queries_match_unsharded_engine() {
    let plain = build_engine(None);
    let base = plain.session();
    let views = [
        Rect::new(0.0, 10.0, 0.0, 10.0),
        Rect::new(3.0, 5.0, 3.0, 5.0),
        Rect::new(0.1, 0.9, 9.0, 9.9),
    ];
    for n_shards in SHARD_COUNTS {
        let sharded = build_engine(Some(n_shards));
        let s = sharded.session();
        for v in views {
            let a = base.viewport(v, 64, 64);
            let b = s.viewport(v, 64, 64);
            assert_eq!(a.values(), b.values(), "viewport {v:?} differs at {n_shards} shards");
        }
        // Region post-processing and the placement argmax see the same
        // arrangement.
        let tk_a = base.top_k(5);
        let tk_b = s.top_k(5);
        assert_eq!(tk_a.len(), tk_b.len());
        for (x, y) in tk_a.iter().zip(&tk_b) {
            assert_eq!(x.influence, y.influence, "{n_shards} shards");
        }
        let p_a = base.top_placements(3);
        let p_b = s.top_placements(3);
        assert_eq!(p_a.len(), p_b.len());
        for (x, y) in p_a.iter().zip(&p_b) {
            assert_eq!(x.influence, y.influence, "{n_shards} shards");
            assert_eq!(x.point, y.point, "{n_shards} shards");
        }
    }
}

#[test]
fn edits_keep_sharded_and_unsharded_rasters_identical() {
    let view = Rect::new(0.0, 10.0, 0.0, 10.0);
    for n_shards in SHARD_COUNTS {
        let plain = build_engine(None);
        let sharded = build_engine(Some(n_shards));
        let mut a = plain.session();
        let mut b = sharded.session();
        // Scripted edit sequence: add (new circles shrink), move
        // (dirty two disjoint areas), remove (circles grow back).
        let (fa, da) = a.add_facility(Point::new(2.2, 7.1)).expect("add");
        let (fb, db) = b.add_facility(Point::new(2.2, 7.1)).expect("add");
        assert_eq!(da.rects(), db.rects(), "dirty regions diverge at {n_shards} shards");
        let fr_a = a.viewport(view, 64, 64);
        let fr_b = b.viewport(view, 64, 64);
        assert_eq!(fr_a.values(), fr_b.values(), "post-add raster differs at {n_shards} shards");

        a.move_facility(fa, Point::new(8.5, 1.5)).expect("move");
        b.move_facility(fb, Point::new(8.5, 1.5)).expect("move");
        let fr_a = a.viewport(view, 64, 64);
        let fr_b = b.viewport(view, 64, 64);
        assert_eq!(fr_a.values(), fr_b.values(), "post-move raster differs at {n_shards} shards");

        a.remove_facility(fa).expect("remove");
        b.remove_facility(fb).expect("remove");
        let fr_a = a.viewport(view, 64, 64);
        let fr_b = b.viewport(view, 64, 64);
        assert_eq!(fr_a.values(), fr_b.values(), "post-remove raster differs at {n_shards} shards");

        // The shard summaries themselves must be consistent after the
        // edit churn: rebuilding the same geometry from scratch at the
        // same shard count reproduces the restriction content.
        let snap_b = b.snapshot();
        for w in [Rect::new(1.0, 9.0, 1.0, 9.0), Rect::new(8.0, 8.4, 1.2, 1.8)] {
            assert_eq!(
                restricted_signature(&a.snapshot().restrict_to(w)),
                restricted_signature(&snap_b.restrict_to(w)),
                "post-edit restriction differs at {n_shards} shards"
            );
        }
    }
}

#[test]
fn monochromatic_and_l1_sharded_builds_match() {
    // L1 shards along the *rotated* sweep axis; monochromatic mode has
    // no facility set. Both exercise shard_x edge cases.
    let points = pseudo_points(200, 77, 6.0);
    let plain = ArrangementSnapshot::build_k(
        points.clone(),
        Vec::new(),
        Metric::L1,
        Mode::Monochromatic,
        2,
    )
    .expect("valid instance");
    for n_shards in SHARD_COUNTS {
        let sharded = ArrangementSnapshot::build_k_sharded(
            points.clone(),
            Vec::new(),
            Metric::L1,
            Mode::Monochromatic,
            2,
            n_shards,
        )
        .expect("valid instance");
        for w in [Rect::new(0.0, 6.0, 0.0, 6.0), Rect::new(2.0, 3.0, 2.5, 4.0)] {
            assert_eq!(
                restricted_signature(&plain.restrict_to(w)),
                restricted_signature(&sharded.restrict_to(w)),
                "L1 mono restriction differs at {n_shards} shards"
            );
        }
    }
}
